//! The region-sharded execution engine vs the single-threaded reference.
//!
//! PR 8 added `ExecutionMode::Sharded`: the field is split into
//! column-band regions, one per worker thread, advanced in conservative
//! barrier-epoch windows — and the result is bit-identical to the
//! single-threaded run (see `channel_equivalence.rs`). Shards are now
//! *owner-only*: each worker materialises cold per-node state only for
//! its own band (plus a reach-wide halo of hot state), so shard memory
//! is O(N/S + halo) instead of S full replicas. This bench measures
//! both axes: whole-scenario *events per wall-second* as the shard
//! count grows, and *peak RSS per row* — each row re-executed in a
//! fresh child process (`VmHWM` is a per-process high-water mark) so
//! the sharded footprint is comparable against single mode, with a
//! budget assertion that fails the run if a sharded row exceeds 1.3× of
//! (single-mode RSS + a per-shard halo allowance).
//!
//! Scenarios hold node density constant (one node per 250 m × 250 m, as
//! in the channel/mobility benches) with a workload that *scales with
//! N* — one nearest-neighbour CBR flow per 250 nodes, sources scattered
//! across the whole field — so every region band carries traffic and the
//! rows measure parallel scaling, not one hot shard plus idle spectators.
//! Every row (single and sharded alike) runs with the same 10 µs delay
//! floor, so timing differences isolate the execution strategy; the
//! simulated event streams are bit-identical across rows by
//! construction, which the harness asserts via the reported event count.
//!
//! Results go to `BENCH_parallel.json` at the repository root. On a
//! host exposing ≥ 4 cores the run **fails** unless sharded execution
//! beats the single-threaded reference by ≥ 1.5× events/sec at
//! N = 16000 with ≥ 4 shards (the PR 8 acceptance bar). On narrower
//! hosts a parallel speedup is physically unattainable — S region
//! threads time-slice one core and every barrier crossing buys a
//! scheduler round-trip — so the bar is reported but not enforced, and
//! the artifact records `host_cores` so readers can interpret the rows.
//!
//! The full run also guards the PR 10 checkpoint subsystem: an extra
//! `checkpoint_overhead` row re-times the N = 64000 single-mode row
//! with periodic snapshots every 100 ms of *simulated* time, each
//! fully serialized through the envelope (`to_bytes`) — the cost the
//! campaign runner pays before writing to disk. The dense interval
//! exists to measure per-snapshot cost precisely inside a 400 ms row;
//! the enforced bar is the cost *at a 10 s simulated checkpoint
//! interval* (the recommended production cadence): per-snapshot wall
//! cost divided by the wall time between 10 s-cadence snapshots must
//! stay under 5% of events/sec.
//!
//! With `PCMAC_BENCH_QUICK=1` (the CI perf-smoke step) the bench runs
//! reduced sizes, only asserts that 4-shard execution stays above 0.9×
//! of single (again only with ≥ 4 cores), and does **not** rewrite
//! `BENCH_parallel.json`.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use pcmac::{
    ExecutionMode, NodeSetup, RunHooks, RunOutcome, ScenarioConfig, SimSnapshot, Simulator, Variant,
};
use pcmac_bench::support::{
    density_per_km2, field_side, nearest_neighbour_flows, quick_mode, scatter,
};
use pcmac_engine::{Duration, Milliwatts};

/// Node counts under comparison (full mode). The 131072 row is the
/// scale-ceiling probe: it exists to show the owner-only memory model
/// holding its budget past N = 100k, at a reduced duration (see
/// [`row_duration`]).
const SIZES: [usize; 4] = [4000, 16000, 64000, 131_072];

/// Node counts in `PCMAC_BENCH_QUICK` mode — the classic smoke sizes
/// plus the scale-ceiling row at a further-reduced duration.
const QUICK_SIZES: [usize; 3] = [1000, 4000, 131_072];

/// Shard counts per size; `0` encodes the single-threaded reference.
const SHARDS: [usize; 5] = [0, 1, 2, 4, 8];

/// Lookahead: every propagation delay is floored at 10 µs (a 3 km
/// speed-of-light radius — far beyond any audible link at these
/// densities, so the floor only quantizes, never reorders, local
/// arrivals — while staying under the 20 µs slot time, past which the
/// MAC's two-slot timeout grace dies and traffic silently zeroes out).
/// Applied to every row so single and sharded are comparable.
const DELAY_FLOOR_US: f64 = 10.0;

fn sizes() -> &'static [usize] {
    if quick_mode() {
        &QUICK_SIZES
    } else {
        &SIZES
    }
}

/// Cores the OS exposes to this process — the ceiling on any real
/// parallel speedup, recorded in the artifact and gating the perf bars.
fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Simulated duration per row: 400 ms at the classic sizes; the
/// N ≥ 100k scale rows run shorter — they probe construction cost,
/// steady-state throughput, and the memory ceiling, which saturate
/// quickly — and quick mode trims them further.
fn row_duration(n: usize) -> Duration {
    if n >= 100_000 {
        if quick_mode() {
            // Long enough for the first staggered flows (starting at
            // 20 ms) to finish AODV discovery plus the MAC handshake —
            // 25 ms measured zero deliveries.
            Duration::from_millis(60)
        } else {
            Duration::from_millis(120)
        }
    } else {
        Duration::from_millis(400)
    }
}

/// Per-shard halo allowance for the memory budget: the hot arrays a
/// shard keeps for the whole population (≈ 32 bytes of mirrors and
/// scratch per node) plus a fixed 16 MiB of per-thread slack (stacks,
/// queue growth, allocator retention).
fn halo_allowance_bytes(n: usize) -> u64 {
    n as u64 * 32 + 16 * 1024 * 1024
}

/// N static nodes at constant density, one single-hop CBR flow per 250
/// nodes spread over the whole field, under the given execution mode.
fn scenario(n: usize, shards: usize) -> ScenarioConfig {
    let side = field_side(n);
    let duration = row_duration(n);
    let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 1000.0, 1);
    cfg.name = format!("parallel-bench-{n}-{shards}");
    cfg.field = (side, side);
    cfg.duration = duration;
    // CSThresh floor: 550 m reach — local reception, the indexed regime.
    cfg.interference_floor = Milliwatts(1.559e-8);
    cfg.delay_floor_us = Some(DELAY_FLOOR_US);
    cfg.execution = (shards > 0).then_some(ExecutionMode::Sharded { shards });
    let pts = scatter(11, "bench.parallel.placement", n, side);
    let flows = (n / 250).max(8) as u32;
    cfg.flows = nearest_neighbour_flows(
        11,
        "bench.parallel.flows",
        &pts,
        flows,
        40_000.0,
        (20, 3),
        duration,
    );
    cfg.nodes = NodeSetup::Static(pts);
    cfg
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel");
    for &n in sizes() {
        g.sample_size(match n {
            0..=4000 => 5,
            4001..=16000 => 3,
            _ => 2,
        });
        for shards in SHARDS {
            let key = if shards == 0 {
                "single".to_string()
            } else {
                format!("sharded{shards}")
            };
            g.bench_function(format!("{key}/{n}"), |b| {
                b.iter(|| {
                    let r = Simulator::new(scenario(n, shards)).run();
                    black_box(r.events)
                });
            });
        }
    }
    g.finish();
}

criterion_group!(
    name = parallel;
    config = Criterion::default();
    targets = bench_parallel
);

/// Child-process entry for the per-row RSS probe: run one row, print
/// the process's `VmHWM`, exit. Selected by `PCMAC_BENCH_RSS_CHILD`
/// (`"<n>:<shards>"`, `0` = single) before any benchmarking starts.
fn rss_child(spec: &str) {
    let (n, shards) = spec.split_once(':').expect("spec is <n>:<shards>");
    let n: usize = n.parse().expect("node count");
    let shards: usize = shards.parse().expect("shard count");
    let r = Simulator::new(scenario(n, shards)).run();
    black_box(r.events);
    match pcmac_bench::support::peak_rss_kb() {
        Some(kb) => println!("VMHWM_KB={kb}"),
        None => println!("VMHWM_KB=unsupported"),
    }
}

/// Peak RSS (bytes) of one row, measured in a fresh child process so
/// the high-water mark belongs to that row alone. `None` when the
/// platform offers no `VmHWM` or the child fails.
fn measure_peak_rss(n: usize, shards: usize) -> Option<u64> {
    let exe = std::env::current_exe().ok()?;
    let out = std::process::Command::new(exe)
        .env("PCMAC_BENCH_RSS_CHILD", format!("{n}:{shards}"))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let kb: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("VMHWM_KB="))?
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

fn main() {
    if let Some(spec) = std::env::var_os("PCMAC_BENCH_RSS_CHILD") {
        rss_child(spec.to_str().expect("utf-8 rss spec"));
        return;
    }
    parallel();

    let quick = quick_mode();
    let measurements = criterion::take_measurements();
    let mean = |id: &str| {
        measurements
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.mean_ns)
            .expect("benchmark ran")
    };

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    // speedups[(n, shards)] = single events/sec ÷ sharded events/sec —
    // the event streams are bit-identical, so the events/sec ratio is
    // the inverse wall-time ratio.
    let mut speedups: Vec<(usize, usize, f64)> = Vec::new();
    println!(
        "\n{:>6} {:>8} {:>13} {:>14} {:>9} {:>11}",
        "N", "shards", "wall", "events/sec", "speedup", "peak RSS"
    );
    for &n in sizes() {
        // One reference run per size for the events/sec numerator; every
        // mode simulates the identical stream (asserted below).
        let events = Simulator::new(scenario(n, 0)).run().events;
        let single_ns = mean(&format!("parallel/single/{n}"));
        let mut single_rss = None;
        for shards in SHARDS {
            let key = if shards == 0 {
                "single".to_string()
            } else {
                format!("sharded{shards}")
            };
            let ns = mean(&format!("parallel/{key}/{n}"));
            let eps = events as f64 / (ns / 1e9);
            let speedup = single_ns / ns;
            let rss = measure_peak_rss(n, shards);
            let rss_str = rss.map_or("n/a".to_string(), |b| {
                format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
            });
            println!(
                "{n:>6} {key:>8} {:>11.2}ms {eps:>14.0} {speedup:>8.2}x {rss_str:>11}",
                ns / 1e6
            );
            if shards == 0 {
                single_rss = rss;
            } else {
                speedups.push((n, shards, speedup));
                // The owner-only memory budget: a sharded row may cost at
                // most 1.3× of the single-mode footprint plus a per-shard
                // halo allowance. S full replicas (the PR 8 model) blow
                // this immediately at these sizes.
                if let (Some(rss), Some(single)) = (rss, single_rss) {
                    let budget =
                        (1.3 * (single + shards as u64 * halo_allowance_bytes(n)) as f64) as u64;
                    if rss > budget {
                        failures.push(format!(
                            "memory budget exceeded at N={n} shards={shards}: peak RSS                              {rss} B > budget {budget} B (single {single} B +                              {shards} x halo allowance {} B, x1.3)",
                            halo_allowance_bytes(n)
                        ));
                    }
                }
            }
            let mut row = vec![
                ("n".into(), serde_json::Value::U64(n as u64)),
                ("shards".into(), serde_json::Value::U64(shards as u64)),
                (
                    "field_m".into(),
                    serde_json::Value::F64(field_side(n).round()),
                ),
                (
                    "density_per_km2".into(),
                    serde_json::Value::F64(density_per_km2(n)),
                ),
                ("events".into(), serde_json::Value::U64(events)),
                ("wall_ns".into(), serde_json::Value::F64(ns)),
                ("events_per_sec".into(), serde_json::Value::F64(eps)),
                ("speedup_vs_single".into(), serde_json::Value::F64(speedup)),
            ];
            if let Some(b) = rss {
                row.push(("peak_rss_bytes".into(), serde_json::Value::U64(b)));
            }
            rows.push(serde_json::Value::Map(row));
        }
    }

    // Bit-identity spot check: the sharded engine must report the same
    // event count as the reference at the largest size (the full
    // equivalence matrix lives in channel_equivalence.rs).
    let &n_top = sizes().last().expect("sizes non-empty");
    let single_top = Simulator::new(scenario(n_top, 0)).run();
    let sharded_events = Simulator::new(scenario(n_top, 4)).run().events;
    if single_top.events != sharded_events {
        failures.push(format!(
            "event-count parity broke at N={n_top}: single {}, \
             4-shard {sharded_events}",
            single_top.events
        ));
    }
    // Guard against measuring a degenerate workload: if the delay floor
    // (or anything else) silently killed the MAC handshake, every row
    // would still "run" while timing nothing but failed RTS retries.
    if single_top.delivered_packets == 0 {
        failures.push(format!(
            "no traffic delivered at N={n_top}: the bench would be measuring a \
             degenerate zero-delivery workload"
        ));
    }

    // The perf bars only make sense where a parallel speedup is
    // physically possible: S region threads on fewer cores time-slice,
    // and every barrier crossing costs a scheduler round-trip instead
    // of a few hundred nanoseconds of spinning.
    let cores = host_cores();
    let enforce = cores >= 4;
    if !enforce {
        println!(
            "\nnote: host exposes {cores} core(s); the parallel speedup bars \
             need >= 4, so they are reported above but not enforced here \
             (CI's bench job enforces them on a multi-core runner)"
        );
    }

    if quick {
        // Perf smoke: guard against the sharded machinery *costing* more
        // than 10% at the largest reduced size with 4 shards.
        if enforce {
            if let Some(&(n, _, speedup)) = speedups.iter().find(|&&(n, s, _)| n == n_top && s == 4)
            {
                if speedup < 0.9 {
                    failures.push(format!(
                        "perf smoke: 4-shard execution fell below 0.9x of single at \
                         N={n} (got {speedup:.2}x)"
                    ));
                }
            }
        }
        println!("\nquick mode: BENCH_parallel.json left untouched");
    } else {
        // PR 10 guard: periodic in-run checkpoints must be close to
        // free at the production cadence. Snapshots are taken every
        // 100 ms of simulated time — dense enough that a 400 ms row
        // yields a stable per-snapshot cost — and each is fully
        // serialized in the sink (`to_bytes`), the exact cost the
        // campaign runner pays before writing to disk. The enforced
        // bar rescales that per-snapshot cost to the recommended 10 s
        // simulated checkpoint interval: cost divided by the wall time
        // between 10 s-cadence snapshots must stay under 5%.
        let ck_n = 64_000;
        let ck_every = Duration::from_millis(100);
        let timed = |hooked: bool| -> (f64, u64, u64) {
            let mut best = f64::INFINITY;
            let (mut snaps, mut bytes) = (0u64, 0u64);
            for _ in 0..3 {
                let sim = Simulator::new(scenario(ck_n, 0));
                let start = std::time::Instant::now();
                if hooked {
                    let seen = std::sync::Mutex::new((0u64, 0u64));
                    let sink = |s: SimSnapshot| {
                        let len = s.to_bytes().len() as u64;
                        let mut g = seen.lock().unwrap();
                        g.0 += 1;
                        g.1 += len;
                    };
                    match sim.run_with_hooks(RunHooks {
                        cancel: None,
                        checkpoint_every: Some(ck_every),
                        checkpoint_sink: Some(&sink),
                    }) {
                        RunOutcome::Completed(r) => {
                            black_box(r.events);
                        }
                        RunOutcome::Cancelled(_) => unreachable!("no cancel token"),
                    }
                    (snaps, bytes) = seen.into_inner().unwrap();
                } else {
                    black_box(sim.run().events);
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            (best, snaps, bytes)
        };
        let (plain_s, _, _) = timed(false);
        let (hooked_s, ck_snaps, ck_bytes) = timed(true);
        let per_snap_s = (hooked_s - plain_s).max(0.0) / ck_snaps.max(1) as f64;
        // Simulated seconds that elapse per wall second on this host:
        // at a 10 s simulated cadence a snapshot lands every
        // 10 / sim_rate wall seconds, and the overhead fraction is the
        // per-snapshot cost spread over that spacing.
        let sim_rate = row_duration(ck_n).as_secs_f64() / plain_s;
        let overhead_at_10s = per_snap_s * sim_rate / 10.0;
        println!(
            "\ncheckpoint overhead at N={ck_n}: plain {:.0} ms, {ck_snaps} snapshots \
             every 100 ms simulated add {:.0} ms ({:.0} ms per snapshot, \
             {:.1} MiB serialized each); at a 10 s simulated interval: {:.2}%",
            plain_s * 1e3,
            (hooked_s - plain_s).max(0.0) * 1e3,
            per_snap_s * 1e3,
            ck_bytes as f64 / ck_snaps.max(1) as f64 / (1024.0 * 1024.0),
            overhead_at_10s * 100.0
        );
        if overhead_at_10s > 0.05 {
            failures.push(format!(
                "checkpoint overhead bar: at a 10 s simulated checkpoint \
                 interval, snapshots cost {:.2}% events/sec at N={ck_n} \
                 (bar: 5%; measured {:.0} ms per snapshot, {:.2} sim-s/s)",
                overhead_at_10s * 100.0,
                per_snap_s * 1e3,
                sim_rate
            ));
        }
        rows.push(serde_json::Value::Map(vec![
            (
                "bench_section".into(),
                serde_json::Value::Str("checkpoint_overhead".into()),
            ),
            ("n".into(), serde_json::Value::U64(ck_n as u64)),
            (
                "checkpoint_interval_sim_ms".into(),
                serde_json::Value::U64(100),
            ),
            ("checkpoints".into(), serde_json::Value::U64(ck_snaps)),
            (
                "snapshot_bytes_total".into(),
                serde_json::Value::U64(ck_bytes),
            ),
            (
                "plain_wall_ns".into(),
                serde_json::Value::F64(plain_s * 1e9),
            ),
            (
                "checkpointed_wall_ns".into(),
                serde_json::Value::F64(hooked_s * 1e9),
            ),
            (
                "per_snapshot_wall_ns".into(),
                serde_json::Value::F64(per_snap_s * 1e9),
            ),
            (
                "overhead_frac_at_10s_interval".into(),
                serde_json::Value::F64(overhead_at_10s),
            ),
        ]));

        // The PR 8 acceptance bar: >= 1.5x events/sec at N=16000 with
        // >= 4 shards.
        if enforce {
            let best = speedups
                .iter()
                .filter(|&&(n, s, _)| n == 16000 && s >= 4)
                .map(|&(_, _, sp)| sp)
                .fold(f64::NEG_INFINITY, f64::max);
            if best < 1.5 {
                failures.push(format!(
                    "sharded execution must reach >= 1.5x single events/sec at \
                     N=16000 with >= 4 shards (best {best:.2}x)"
                ));
            }
        }

        let doc = serde_json::Value::Map(vec![
            ("bench".into(), serde_json::Value::Str("parallel".into())),
            (
                "description".into(),
                serde_json::Value::Str(
                    "whole-run events per wall-second at constant density (16 nodes/km2, \
                     floor = CSThresh, one nearest-neighbour CBR flow per 250 nodes, \
                     10 us delay floor on every row): owner-only region-sharded execution \
                     at 1/2/4/8 worker threads vs the single-threaded reference; \
                     speedup = single wall / sharded wall (event streams are bit-identical; \
                     speedups are bounded by host_cores); peak_rss_bytes = per-row child \
                     process VmHWM (the N >= 100k rows run a reduced duration)"
                        .into(),
                ),
            ),
            ("host_cores".into(), serde_json::Value::U64(cores as u64)),
            ("results".into(), serde_json::Value::Seq(rows)),
        ]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
        std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n")
            .expect("write BENCH_parallel.json");
        println!("\nwrote {path}");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
