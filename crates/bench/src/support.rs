//! Shared plumbing for the channel and mobility benches.
//!
//! Both benches sell the same methodology — rows comparable across N —
//! and it lives here precisely so the two cannot drift apart:
//!
//! * **Constant node density**: fields grow as `sqrt(N) ·` [`PITCH_M`]
//!   (one node per 250 m × 250 m, 16 nodes/km²), recorded per row via
//!   [`density_per_km2`].
//! * **Single-hop workload**: flows run from a random source to its
//!   nearest neighbour ([`nearest_neighbour_flows`]), so AODV route
//!   length never varies with N and timing differences isolate the
//!   channel.
//! * **Quick mode**: `PCMAC_BENCH_QUICK=1` ([`quick_mode`]) is the CI
//!   perf-smoke switch — reduced sizes, tolerance-band assertions, and
//!   no rewrite of the checked-in `BENCH_*.json`.

use pcmac::{FlowShape, FlowSpec};
use pcmac_engine::{Duration, FlowId, NodeId, Point, RngStream, SimTime};

/// Field pitch per node: one node per `PITCH_M` × `PITCH_M` square.
pub const PITCH_M: f64 = 250.0;

/// `true` when `PCMAC_BENCH_QUICK` selects the CI perf-smoke mode.
pub fn quick_mode() -> bool {
    std::env::var_os("PCMAC_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Field side for a node count at constant density.
pub fn field_side(n: usize) -> f64 {
    (n as f64).sqrt() * PITCH_M
}

/// Nodes per square kilometre (constant by construction; recorded so
/// result rows are self-describing).
pub fn density_per_km2(n: usize) -> f64 {
    let side_km = field_side(n) / 1000.0;
    n as f64 / (side_km * side_km)
}

/// Peak resident set size of the calling process in kilobytes —
/// `VmHWM` from `/proc/self/status`. `None` where procfs is absent.
///
/// `VmHWM` is a high-water mark: it never decreases within a process,
/// so a harness that wants *per-row* peaks must run each row in a
/// fresh child process and read the child's value at exit.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// `n` positions scattered uniformly over a `side` × `side` field from
/// a labelled RNG stream.
pub fn scatter(seed: u64, label: &str, n: usize, side: f64) -> Vec<Point> {
    let mut rng = RngStream::derive(seed, label);
    (0..n)
        .map(|_| Point::new(rng.uniform(0.0, side), rng.uniform(0.0, side)))
        .collect()
}

/// `count` CBR flows, each from a random source to its *nearest
/// neighbour* — single-hop traffic whose route length cannot vary with
/// N. Flow `i` starts at `stagger_ms.0 + i · stagger_ms.1`.
pub fn nearest_neighbour_flows(
    seed: u64,
    label: &str,
    pts: &[Point],
    count: u32,
    rate_bps: f64,
    stagger_ms: (u64, u64),
    duration: Duration,
) -> Vec<FlowSpec> {
    let (start_ms, step_ms) = stagger_ms;
    let n = pts.len();
    let nearest = |src: usize| -> u32 {
        (0..n)
            .filter(|&j| j != src)
            .min_by(|&a, &b| {
                pts[src]
                    .distance_sq(pts[a])
                    .total_cmp(&pts[src].distance_sq(pts[b]))
            })
            .expect("n >= 2") as u32
    };
    let mut rng = RngStream::derive(seed, label);
    (0..count)
        .map(|i| {
            let src = rng.below(n as u64) as u32;
            FlowSpec {
                flow: FlowId(i),
                src: NodeId(src),
                dst: NodeId(nearest(src as usize)),
                bytes: 512,
                rate_bps,
                start: SimTime::ZERO + Duration::from_millis(start_ms + step_ms * i as u64),
                stop: SimTime::ZERO + duration,
                shape: FlowShape::Cbr,
            }
        })
        .collect()
}
