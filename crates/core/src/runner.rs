//! Parallel experiment driver.
//!
//! A single DES run is inherently sequential, but the paper's figures are
//! sweeps: (protocol × offered load × seed) grids of independent runs.
//! This driver fans the grid out over worker threads using
//! `std::thread::scope` and a `crossbeam` work channel, collecting
//! results in submission order.

use crossbeam::channel;

use crate::config::ScenarioConfig;
use crate::report::RunReport;
use crate::sim::Simulator;

fn worker_count(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    }
}

/// Run every scenario, `threads`-wide, preserving input order in the
/// output. `threads == 0` means "one per available core".
pub fn run_parallel(scenarios: Vec<ScenarioConfig>, threads: usize) -> Vec<RunReport> {
    let threads = worker_count(threads).min(scenarios.len().max(1));
    run_with_workers(scenarios, threads)
}

/// [`run_parallel`] over a lazily-produced scenario stream: the producer
/// feeds a bounded work channel directly, so at most ~2× the worker
/// count of scenarios exist at any moment. This is how huge campaign
/// expansions run without materializing every `(point × seed)` config up
/// front — runs start while the expansion is still being generated.
/// `threads == 0` means "one per available core".
pub fn run_parallel_iter(
    scenarios: impl IntoIterator<Item = ScenarioConfig>,
    threads: usize,
) -> Vec<RunReport> {
    run_with_workers(scenarios, worker_count(threads))
}

fn run_with_workers(
    scenarios: impl IntoIterator<Item = ScenarioConfig>,
    threads: usize,
) -> Vec<RunReport> {
    let threads = threads.max(1);
    // Bounded: the producer (possibly a lazy expansion) blocks instead of
    // running arbitrarily far ahead of the workers.
    let (tx, rx) = channel::bounded::<(usize, ScenarioConfig)>(2 * threads);
    let (result_tx, result_rx) = channel::unbounded::<(usize, RunReport)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                while let Ok((idx, cfg)) = rx.recv() {
                    let _ = result_tx.send((idx, Simulator::new(cfg).run()));
                }
            });
        }
        drop(result_tx);
        drop(rx);

        for item in scenarios.into_iter().enumerate() {
            tx.send(item).expect("workers outlive the producer");
        }
        drop(tx);

        let mut out: Vec<(usize, RunReport)> = Vec::new();
        while let Ok(pair) = result_rx.recv() {
            out.push(pair);
        }
        out.sort_unstable_by_key(|&(idx, _)| idx);
        out.into_iter().map(|(_, report)| report).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Variant;
    use pcmac_engine::Duration;

    #[test]
    fn parallel_matches_sequential() {
        let mk = |seed| {
            ScenarioConfig::two_nodes(Variant::Basic, 100.0, 80_000.0, seed)
                .with_duration(Duration::from_secs(2))
        };
        let seq: Vec<_> = (0..4).map(|s| Simulator::new(mk(s)).run()).collect();
        let par = run_parallel((0..4).map(mk).collect(), 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.seed, b.seed, "order preserved");
            assert_eq!(a.delivered_packets, b.delivered_packets, "determinism");
            assert_eq!(a.mac.rts_sent, b.mac.rts_sent);
        }
    }

    #[test]
    fn lazy_iterator_matches_eager_vec() {
        let mk = |seed| {
            ScenarioConfig::two_nodes(Variant::Basic, 100.0, 80_000.0, seed)
                .with_duration(Duration::from_secs(2))
        };
        let eager = run_parallel((0..4).map(mk).collect(), 2);
        // The iterator path generates each config on demand.
        let lazy = run_parallel_iter((0..4).map(mk), 2);
        assert_eq!(eager.len(), lazy.len());
        for (a, b) in eager.iter().zip(&lazy) {
            assert_eq!(a.seed, b.seed, "order preserved");
            assert_eq!(a.delivered_packets, b.delivered_packets);
            assert_eq!(a.events, b.events);
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        let cfgs = vec![
            ScenarioConfig::two_nodes(Variant::Basic, 100.0, 50_000.0, 1)
                .with_duration(Duration::from_secs(1)),
        ];
        let out = run_parallel(cfgs, 0);
        assert_eq!(out.len(), 1);
    }
}
