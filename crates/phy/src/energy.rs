//! Per-node energy accounting.
//!
//! The paper's evaluation section measures throughput and delay, but its
//! motivation — and the related work it positions against — is battery
//! energy. The meter lets every experiment also report transmit energy, so
//! the "power saving" side of power control is quantifiable (used by the
//! energy ablation bench).
//!
//! Model: the radio is always in exactly one [`RadioMode`]. Idle/receive
//! modes draw a fixed electronics power; transmit draws electronics power
//! plus the actual radiated power of the selected level (this is the term
//! power control reduces).

use pcmac_engine::{Milliwatts, SimTime};
use serde::{Deserialize, Serialize};

/// What the radio is doing, for energy purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RadioMode {
    /// Powered but neither sending nor receiving.
    Idle,
    /// Locked onto an arriving frame.
    Receive,
    /// Radiating. The associated draw adds the radiated power.
    Transmit,
}

/// Electronics draw per mode, in milliwatts. Defaults are in the ballpark
/// of the Lucent WaveLAN measurements commonly used in the literature
/// (idle 843 mW, rx 1035 mW, tx electronics 1330 mW beyond radiated power).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Draw while idle (mW).
    pub idle_mw: f64,
    /// Draw while receiving (mW).
    pub rx_mw: f64,
    /// Electronics draw while transmitting, excluding radiated power (mW).
    pub tx_electronics_mw: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            idle_mw: 843.0,
            rx_mw: 1035.0,
            tx_electronics_mw: 1330.0,
        }
    }
}

impl EnergyModel {
    /// A model where only radiated energy counts — isolates exactly the
    /// term transmit power control optimises.
    pub fn radiated_only() -> Self {
        EnergyModel {
            idle_mw: 0.0,
            rx_mw: 0.0,
            tx_electronics_mw: 0.0,
        }
    }
}

/// Integrates energy over mode changes.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    model: EnergyModel,
    mode: RadioMode,
    tx_power: Milliwatts,
    last_change: SimTime,
    total_mj: f64,
    tx_mj: f64,
    radiated_mj: f64,
}

impl EnergyMeter {
    /// A meter starting idle at `t0`.
    pub fn new(model: EnergyModel, t0: SimTime) -> Self {
        EnergyMeter {
            model,
            mode: RadioMode::Idle,
            tx_power: Milliwatts::ZERO,
            last_change: t0,
            total_mj: 0.0,
            tx_mj: 0.0,
            radiated_mj: 0.0,
        }
    }

    /// Switch mode at time `now`. For [`RadioMode::Transmit`], `tx_power`
    /// is the radiated power of the selected level; ignored otherwise.
    pub fn set_mode(&mut self, now: SimTime, mode: RadioMode, tx_power: Milliwatts) {
        self.accumulate(now);
        self.mode = mode;
        self.tx_power = if mode == RadioMode::Transmit {
            tx_power
        } else {
            Milliwatts::ZERO
        };
    }

    /// Fold in the elapsed interval at the current draw.
    fn accumulate(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_change).as_secs_f64();
        self.last_change = now;
        if dt == 0.0 {
            return;
        }
        let draw_mw = match self.mode {
            RadioMode::Idle => self.model.idle_mw,
            RadioMode::Receive => self.model.rx_mw,
            RadioMode::Transmit => self.model.tx_electronics_mw + self.tx_power.value(),
        };
        let mj = draw_mw * dt;
        self.total_mj += mj;
        if self.mode == RadioMode::Transmit {
            self.tx_mj += mj;
            self.radiated_mj += self.tx_power.value() * dt;
        }
    }

    /// Close the books at `end` and read totals.
    pub fn finish(&mut self, end: SimTime) {
        self.accumulate(end);
    }

    /// Total energy consumed (millijoules).
    pub fn total_mj(&self) -> f64 {
        self.total_mj
    }

    /// Energy consumed while transmitting (millijoules).
    pub fn tx_mj(&self) -> f64 {
        self.tx_mj
    }

    /// Radiated energy only (millijoules) — the quantity power control
    /// directly reduces.
    pub fn radiated_mj(&self) -> f64 {
        self.radiated_mj
    }
}

mod snap {
    //! Checkpoint capture of the energy integrator — the accumulated
    //! millijoule totals are `f64` bit patterns, so restored meters keep
    //! integrating from exactly where the original left off.

    use super::{EnergyMeter, EnergyModel, RadioMode};
    use pcmac_snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for RadioMode {
        fn save(&self, w: &mut SnapWriter) {
            w.u8(match self {
                RadioMode::Idle => 0,
                RadioMode::Receive => 1,
                RadioMode::Transmit => 2,
            });
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(RadioMode::Idle),
                1 => Ok(RadioMode::Receive),
                2 => Ok(RadioMode::Transmit),
                _ => Err(SnapError::Corrupt("radio mode tag")),
            }
        }
    }

    pcmac_snap::snap_struct!(EnergyModel {
        idle_mw,
        rx_mw,
        tx_electronics_mw,
    });

    pcmac_snap::snap_struct!(EnergyMeter {
        model,
        mode,
        tx_power,
        last_change,
        total_mj,
        tx_mj,
        radiated_mj,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmac_engine::Duration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn idle_draw_integrates() {
        let mut m = EnergyMeter::new(EnergyModel::default(), t(0));
        m.finish(t(1000));
        // 843 mW for 1 s = 843 mJ
        assert!((m.total_mj() - 843.0).abs() < 1e-9);
        assert_eq!(m.tx_mj(), 0.0);
    }

    #[test]
    fn transmit_adds_radiated_power() {
        let mut m = EnergyMeter::new(EnergyModel::radiated_only(), t(0));
        m.set_mode(t(0), RadioMode::Transmit, Milliwatts(281.83815));
        m.set_mode(t(100), RadioMode::Idle, Milliwatts::ZERO);
        m.finish(t(1000));
        // 281.83815 mW × 0.1 s
        assert!((m.radiated_mj() - 28.183815).abs() < 1e-9);
        assert!((m.total_mj() - 28.183815).abs() < 1e-9);
    }

    #[test]
    fn lower_power_level_radiates_less() {
        let run = |p: f64| {
            let mut m = EnergyMeter::new(EnergyModel::radiated_only(), t(0));
            m.set_mode(t(0), RadioMode::Transmit, Milliwatts(p));
            m.set_mode(t(50), RadioMode::Idle, Milliwatts::ZERO);
            m.finish(t(100));
            m.radiated_mj()
        };
        let high = run(281.83815);
        let low = run(1.0);
        assert!(low < high / 100.0);
    }

    #[test]
    fn mode_sequence_partitions_energy() {
        let mut m = EnergyMeter::new(EnergyModel::default(), t(0));
        m.set_mode(t(100), RadioMode::Receive, Milliwatts::ZERO);
        m.set_mode(t(200), RadioMode::Transmit, Milliwatts(15.0));
        m.set_mode(t(300), RadioMode::Idle, Milliwatts::ZERO);
        m.finish(t(400));
        let expect = 843.0 * 0.1 + 1035.0 * 0.1 + (1330.0 + 15.0) * 0.1 + 843.0 * 0.1;
        assert!((m.total_mj() - expect).abs() < 1e-9);
        assert!((m.tx_mj() - (1330.0 + 15.0) * 0.1).abs() < 1e-9);
        assert!((m.radiated_mj() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn zero_length_intervals_are_free() {
        let mut m = EnergyMeter::new(EnergyModel::default(), t(0));
        m.set_mode(t(0), RadioMode::Transmit, Milliwatts(100.0));
        m.set_mode(t(0), RadioMode::Idle, Milliwatts::ZERO);
        m.finish(t(0));
        assert_eq!(m.total_mj(), 0.0);
    }
}
