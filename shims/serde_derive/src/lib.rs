//! Offline shim for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! local value-tree `serde` shim. Because the build environment has no
//! registry access, `syn`/`quote` are unavailable; the item is parsed
//! directly from the raw [`proc_macro::TokenStream`] and the impls are
//! generated as source text. Supported shapes — the ones this repository
//! uses:
//!
//! * structs with named fields,
//! * tuple structs (arity 1 is transparent, like serde newtypes),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generic parameters and `#[serde(...)]` attributes are not supported
//! and abort with a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field list.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// A parsed item: struct or enum with its name and shape.
enum Item {
    Struct(String, Fields),
    Enum(String, Vec<(String, Fields)>),
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Skip `#[...]` attributes and visibility modifiers at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            // `#` followed by a bracket group.
            i += 2;
            continue;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
                continue;
            }
        }
        return i;
    }
}

/// Parse the fields of a braced (named-field) group.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Expect ':' then the type, until a comma at angle-bracket depth 0.
        assert!(
            matches!(tokens.get(i), Some(t) if is_punct(t, ':')),
            "serde_derive shim: expected `:` after field `{}`",
            fields.last().unwrap()
        );
        i += 1;
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                t if is_punct(t, '<') => depth += 1,
                t if is_punct(t, '>') => depth -= 1,
                t if is_punct(t, ',') && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Count the fields of a parenthesised (tuple) group.
fn parse_tuple_arity(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        match t {
            t if is_punct(t, '<') => depth += 1,
            t if is_punct(t, '>') => depth -= 1,
            t if is_punct(t, ',') && depth == 0 => {
                arity += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        arity -= 1; // trailing comma
    }
    arity
}

/// Parse enum variants from the enum body.
fn parse_variants(group: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let vname = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(parse_tuple_arity(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        variants.push((vname, fields));
        // Skip to the comma separating variants (covers discriminants,
        // which this repository does not use).
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        i += 1;
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(t) if is_punct(t, '<')) {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct(name, Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::Struct(name, Fields::Tuple(parse_tuple_arity(g.stream())))
            }
            _ => Item::Struct(name, Fields::Unit),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(name, parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: malformed enum body: {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    }
}

/// `#[derive(Serialize)]` for the local value-tree serde shim.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct(name, fields) => {
            let body = match fields {
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Seq(::std::vec![{vals}]))]),",
                            binds = binds.join(", "),
                            vals = vals.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Map(::std::vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

/// `#[derive(Deserialize)]` for the local value-tree serde shim.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct(name, fields) => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: match __get(\"{f}\") {{\n\
                                     ::std::option::Option::Some(__vv) => \
                                         ::serde::Deserialize::from_value(__vv)?,\n\
                                     ::std::option::Option::None => \
                                         ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
                                         .map_err(|_| ::serde::DeError::custom(\
                                             \"{name}: missing field `{f}`\"))?,\n\
                                 }}"
                            )
                        })
                        .collect();
                    format!(
                        "let __m = __v.as_map().ok_or_else(|| \
                             ::serde::DeError::custom(\"{name}: expected map\"))?;\n\
                         let __get = |__k: &str| __m.iter()\
                             .find(|(__kk, _)| __kk == __k).map(|(_, __vv)| __vv);\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(__s.get({i}).ok_or_else(|| \
                                 ::serde::DeError::custom(\"{name}: tuple too short\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let __s = __v.as_seq().ok_or_else(|| \
                             ::serde::DeError::custom(\"{name}: expected sequence\"))?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => return ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(__s.get({i}).ok_or_else(|| \
                                     ::serde::DeError::custom(\"{name}::{v}: tuple too short\"))?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                                 let __s = __inner.as_seq().ok_or_else(|| \
                                     ::serde::DeError::custom(\"{name}::{v}: expected sequence\"))?;\n\
                                 return ::std::result::Result::Ok({name}::{v}({}));\n\
                             }}",
                            inits.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: match __get(\"{f}\") {{\n\
                                         ::std::option::Option::Some(__vv) => \
                                             ::serde::Deserialize::from_value(__vv)?,\n\
                                         ::std::option::Option::None => \
                                             ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
                                             .map_err(|_| ::serde::DeError::custom(\
                                                 \"{name}::{v}: missing field `{f}`\"))?,\n\
                                     }}"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                                 let __m = __inner.as_map().ok_or_else(|| \
                                     ::serde::DeError::custom(\"{name}::{v}: expected map\"))?;\n\
                                 let __get = |__k: &str| __m.iter()\
                                     .find(|(__kk, _)| __kk == __k).map(|(_, __vv)| __vv);\n\
                                 return ::std::result::Result::Ok({name}::{v} {{ {} }});\n\
                             }}",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                             match __s {{\n\
                                 {unit_arms}\n\
                                 _ => return ::std::result::Result::Err(\
                                     ::serde::DeError::custom(\
                                     ::std::format!(\"{name}: unknown variant `{{}}`\", __s))),\n\
                             }}\n\
                         }}\n\
                         if let ::std::option::Option::Some(__m) = __v.as_map() {{\n\
                             if __m.len() == 1 {{\n\
                                 let (__k, __inner) = &__m[0];\n\
                                 match __k.as_str() {{\n\
                                     {data_arms}\n\
                                     _ => return ::std::result::Result::Err(\
                                         ::serde::DeError::custom(\
                                         ::std::format!(\"{name}: unknown variant `{{}}`\", __k))),\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         ::std::result::Result::Err(::serde::DeError::custom(\
                             \"{name}: expected externally-tagged variant\"))\n\
                     }}\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n"),
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
