//! Run reports: the numbers the paper's figures are made of.

use serde::{Deserialize, Serialize};

use pcmac_mac::MacCounters;

use crate::config::ScenarioConfig;
use crate::metrics::SimMetrics;
use crate::node::Node;

/// Routing-layer aggregate counters (mirrors `pcmac_aodv::AodvCounters`
/// into a serialisable report shape).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RoutingCounters {
    /// RREQ floods originated.
    pub rreq_originated: u64,
    /// RREQs rebroadcast.
    pub rreq_forwarded: u64,
    /// RREPs generated.
    pub rrep_generated: u64,
    /// RREPs forwarded.
    pub rrep_forwarded: u64,
    /// RERRs sent.
    pub rerr_sent: u64,
    /// Discoveries that gave up.
    pub discoveries_failed: u64,
    /// Data packets forwarded.
    pub data_forwarded: u64,
    /// Packets dropped by routing.
    pub drops: u64,
}

/// Per-flow delivery outcome (the paper's fairness discussion: a
/// high-power pair must not suppress a nearby low-power pair).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlowReport {
    /// Flow id.
    pub flow: u32,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Application packets emitted.
    pub sent: u64,
    /// Packets delivered at the destination.
    pub delivered: u64,
    /// Mean end-to-end delay of delivered packets (ms).
    pub mean_delay_ms: f64,
}

impl FlowReport {
    /// Per-flow packet delivery ratio.
    pub fn pdr(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

/// Summary statistics over a latency sample (route-repair times).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean latency (seconds).
    pub mean_s: f64,
    /// 95th-percentile latency (seconds).
    pub p95_s: f64,
    /// Worst latency (seconds).
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarise a latency sample; `None` when it is empty. The sample
    /// is sorted internally, so call order does not matter.
    pub fn from_samples(samples: &[f64]) -> Option<LatencySummary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let p95 = sorted[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1];
        Some(LatencySummary {
            count: n as u64,
            mean_s: sorted.iter().sum::<f64>() / n as f64,
            p95_s: p95,
            max_s: sorted[n - 1],
        })
    }

    /// Summarise a streaming estimator. While the population still fits
    /// the estimator's exact window this defers to
    /// [`LatencySummary::from_samples`] over the verbatim samples —
    /// bit-identical to the historical grow-a-`Vec` path — and beyond it
    /// reads the estimator's deterministic bucket summary.
    pub fn from_streaming(q: &pcmac_stats::StreamingQuantile) -> Option<LatencySummary> {
        if q.count() == 0 {
            return None;
        }
        if q.is_exact() {
            return LatencySummary::from_samples(q.exact_samples());
        }
        Some(LatencySummary {
            count: q.count(),
            mean_s: q.mean_s(),
            p95_s: q.quantile_s(0.95),
            max_s: q.max_s(),
        })
    }
}

/// How the network behaved around the fault window. Present on a
/// [`RunReport`] exactly when the scenario carried a fault plan; every
/// field is derived from the deterministic event stream, so it takes
/// part in the bit-identity proof obligation.
///
/// The *fault window* is `[window_start_s, window_end_s)`: from the
/// first scheduled fault activation to the last deactivation (a
/// permanent crash or an exhausted energy budget extends the window to
/// the end of the run). "Before"/"during"/"after" classify application
/// packets by *emission* time; a packet is counted as delivered in the
/// phase it was sent in, so each phase's delivery ratio measures the
/// fate of the traffic offered in that phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// First fault activation (seconds; `None` when an energy-budget-only
    /// plan never killed a node).
    pub window_start_s: Option<f64>,
    /// Last fault deactivation (seconds).
    pub window_end_s: Option<f64>,
    /// Application packets emitted before the fault window.
    pub sent_before: u64,
    /// Application packets emitted during the fault window.
    pub sent_during: u64,
    /// Application packets emitted after the fault window.
    pub sent_after: u64,
    /// Delivered packets that were emitted before the window.
    pub delivered_before: u64,
    /// Delivered packets that were emitted during the window.
    pub delivered_during: u64,
    /// Delivered packets that were emitted after the window.
    pub delivered_after: u64,
    /// Delivery ratio of pre-window traffic.
    pub pdr_before: f64,
    /// Delivery ratio of in-window traffic.
    pub pdr_during: f64,
    /// Delivery ratio of post-window traffic.
    pub pdr_after: f64,
    /// Node-down transitions applied (scheduled, churn, and energy).
    pub crashes: u64,
    /// Node-up transitions applied.
    pub recoveries: u64,
    /// Nodes that exhausted their energy budget.
    pub energy_deaths: u64,
    /// Nodes still down when the run ended.
    pub dead_nodes_end: u64,
    /// Route repairs started (first link failure per (node, destination)).
    pub repairs_started: u64,
    /// Route repairs that completed (data flowed to that destination again).
    pub repairs_completed: u64,
    /// Distribution of completed repair latencies.
    pub repair_latency: Option<LatencySummary>,
    /// Seconds from the fault-window end to the first delivery after it
    /// (`None` if the window reaches the end of the run or nothing was
    /// delivered afterwards).
    pub reconverged_after_s: Option<f64>,
    /// Per-node remaining energy budget (mJ), when a budget was set.
    pub residual_energy_mj: Option<Vec<f64>>,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Scenario label.
    pub name: String,
    /// Protocol under test (paper naming).
    pub protocol: String,
    /// Master seed.
    pub seed: u64,
    /// Simulated seconds.
    pub duration_s: f64,
    /// Aggregate offered application load (kbit/s).
    pub offered_load_kbps: f64,
    /// Application packets emitted by all sources.
    pub sent_packets: u64,
    /// Application packets delivered to their destinations.
    pub delivered_packets: u64,
    /// Aggregate network throughput (kbit/s of delivered application
    /// payload) — the paper's Figure 8 metric.
    pub throughput_kbps: f64,
    /// Mean end-to-end delay (ms) over delivered packets — the paper's
    /// Figure 9 metric. `0` when nothing arrived.
    pub mean_delay_ms: f64,
    /// Median delivered-packet delay (ms, bucket upper edge).
    pub delay_p50_ms: f64,
    /// 95th-percentile delivered-packet delay (ms, bucket upper edge).
    pub delay_p95_ms: f64,
    /// Worst delivered-packet delay (ms).
    pub max_delay_ms: f64,
    /// Network-wide MAC counters.
    pub mac: MacCounters,
    /// Network-wide routing counters.
    pub routing: RoutingCounters,
    /// Total radiated energy across all nodes (mJ).
    pub radiated_mj: f64,
    /// Radiated energy per delivered packet (mJ; `inf` if none arrived).
    pub radiated_mj_per_packet: f64,
    /// Events processed (simulation cost diagnostics).
    pub events: u64,
    /// Wall-clock seconds the run took.
    pub wall_s: f64,
    /// Per-flow breakdown (fairness analysis).
    pub flows: Vec<FlowReport>,
    /// Resilience metrics (`Some` exactly when the scenario carried a
    /// fault plan). Kept optional so report JSON predating the fault
    /// layer parses unchanged.
    pub resilience: Option<ResilienceReport>,
    /// Observability metrics (`Some` exactly when the scenario enabled
    /// the metrics layer). Derived from the deterministic event stream
    /// and free of wall-clock values, so it takes part in the
    /// bit-identity proof obligation. Kept optional so report JSON
    /// predating the metrics layer parses unchanged.
    pub metrics: Option<SimMetrics>,
}

impl RunReport {
    /// Packet delivery ratio in `[0, 1]`.
    pub fn pdr(&self) -> f64 {
        if self.sent_packets == 0 {
            0.0
        } else {
            self.delivered_packets as f64 / self.sent_packets as f64
        }
    }

    /// Jain's fairness index over per-flow delivery counts:
    /// `(Σx)² / (n·Σx²)`, 1 = perfectly fair, `1/n` = one flow takes all.
    /// Quantifies the paper's §III consequence 3 (high-power pairs must
    /// not suppress low-power pairs).
    pub fn jain_fairness(&self) -> f64 {
        let xs: Vec<f64> = self.flows.iter().map(|f| f.delivered as f64).collect();
        let n = xs.len() as f64;
        if n == 0.0 {
            return 1.0;
        }
        let sum: f64 = xs.iter().sum();
        let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
        if sum_sq == 0.0 {
            return 1.0; // nothing delivered anywhere: vacuously fair
        }
        sum * sum / (n * sum_sq)
    }

    pub(crate) fn build(
        cfg: &ScenarioConfig,
        nodes: &[Node],
        sent_packets: u64,
        events: u64,
        wall_s: f64,
        resilience: Option<ResilienceReport>,
        metrics: Option<SimMetrics>,
    ) -> RunReport {
        let mut delivered = 0u64;
        let mut bytes = 0u64;
        let mut delay_sum_ns = 0u64;
        let mut max_delay_ns = 0u64;
        let mut mac = MacCounters::default();
        let mut routing = RoutingCounters::default();
        let mut radiated_mj = 0.0;
        let mut delay_hist: Option<pcmac_stats::Histogram> = None;

        for node in nodes {
            delivered += node.sink.total_received();
            bytes += node.sink.total_bytes();
            for (_, f) in node.sink.flows() {
                delay_sum_ns += f.delay_sum().as_nanos();
                max_delay_ns = max_delay_ns.max(f.max_delay.as_nanos());
            }
            match &mut delay_hist {
                Some(h) => h.merge(node.sink.delay_histogram()),
                None => delay_hist = Some(node.sink.delay_histogram().clone()),
            }
            mac.merge(&node.mac.counters);
            let a = &node.aodv.counters;
            routing.rreq_originated += a.rreq_originated;
            routing.rreq_forwarded += a.rreq_forwarded;
            routing.rrep_generated += a.rrep_generated;
            routing.rrep_forwarded += a.rrep_forwarded;
            routing.rerr_sent += a.rerr_sent;
            routing.discoveries_failed += a.discoveries_failed;
            routing.data_forwarded += a.data_forwarded;
            routing.drops += a.drops;
            radiated_mj += node.energy.radiated_mj();
        }

        let duration_s = cfg.duration.as_secs_f64();
        let throughput_kbps = bytes as f64 * 8.0 / duration_s / 1000.0;
        let mean_delay_ms = if delivered > 0 {
            delay_sum_ns as f64 / delivered as f64 / 1e6
        } else {
            0.0
        };
        let (delay_p50_ms, delay_p95_ms) = delay_hist
            .as_ref()
            .map(|h| {
                (
                    h.quantile(0.5).unwrap_or(0.0),
                    h.quantile(0.95).unwrap_or(0.0),
                )
            })
            .unwrap_or((0.0, 0.0));

        let flows = cfg
            .flows
            .iter()
            .map(|spec| {
                let sent = nodes[spec.src.index()]
                    .sources
                    .iter()
                    .find(|s| s.flow() == spec.flow)
                    .map(|s| s.emitted())
                    .unwrap_or(0);
                let (fl_delivered, fl_delay_ms) = nodes[spec.dst.index()]
                    .sink
                    .flow(spec.flow)
                    .map(|f| {
                        (
                            f.received,
                            f.mean_delay().map(|d| d.as_millis_f64()).unwrap_or(0.0),
                        )
                    })
                    .unwrap_or((0, 0.0));
                FlowReport {
                    flow: spec.flow.0,
                    src: spec.src.0,
                    dst: spec.dst.0,
                    sent,
                    delivered: fl_delivered,
                    mean_delay_ms: fl_delay_ms,
                }
            })
            .collect();

        RunReport {
            name: cfg.name.clone(),
            protocol: cfg.variant.name().to_string(),
            seed: cfg.seed,
            duration_s,
            offered_load_kbps: cfg.offered_load_kbps(),
            sent_packets,
            delivered_packets: delivered,
            throughput_kbps,
            mean_delay_ms,
            delay_p50_ms,
            delay_p95_ms,
            max_delay_ms: max_delay_ns as f64 / 1e6,
            mac,
            routing,
            radiated_mj,
            radiated_mj_per_packet: if delivered > 0 {
                radiated_mj / delivered as f64
            } else {
                f64::INFINITY
            },
            events,
            wall_s,
            flows,
            resilience,
            metrics,
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<13} load {:>6.0} kbps | thpt {:>7.1} kbps | delay {:>8.2} ms | pdr {:>5.1}% | sent {:>6} dlvd {:>6}",
            self.protocol,
            self.offered_load_kbps,
            self.throughput_kbps,
            self.mean_delay_ms,
            self.pdr() * 100.0,
            self.sent_packets,
            self.delivered_packets,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdr_handles_zero_sent() {
        let r = RunReport {
            name: "x".into(),
            protocol: "Basic 802.11".into(),
            seed: 0,
            duration_s: 1.0,
            offered_load_kbps: 0.0,
            sent_packets: 0,
            delivered_packets: 0,
            throughput_kbps: 0.0,
            mean_delay_ms: 0.0,
            delay_p50_ms: 0.0,
            delay_p95_ms: 0.0,
            max_delay_ms: 0.0,
            mac: MacCounters::default(),
            routing: RoutingCounters::default(),
            radiated_mj: 0.0,
            radiated_mj_per_packet: f64::INFINITY,
            events: 0,
            wall_s: 0.0,
            flows: Vec::new(),
            resilience: None,
            metrics: None,
        };
        assert_eq!(r.pdr(), 0.0);
        assert!(r.summary().contains("Basic 802.11"));
        assert_eq!(r.jain_fairness(), 1.0, "empty run is vacuously fair");
    }

    #[test]
    fn jain_index_extremes() {
        let mk_flow = |flow, delivered| FlowReport {
            flow,
            src: 0,
            dst: 1,
            sent: 100,
            delivered,
            mean_delay_ms: 0.0,
        };
        let mut r = RunReport {
            name: "x".into(),
            protocol: "PCMAC".into(),
            seed: 0,
            duration_s: 1.0,
            offered_load_kbps: 0.0,
            sent_packets: 200,
            delivered_packets: 100,
            throughput_kbps: 0.0,
            mean_delay_ms: 0.0,
            delay_p50_ms: 0.0,
            delay_p95_ms: 0.0,
            max_delay_ms: 0.0,
            mac: MacCounters::default(),
            routing: RoutingCounters::default(),
            radiated_mj: 0.0,
            radiated_mj_per_packet: 0.0,
            events: 0,
            wall_s: 0.0,
            flows: vec![mk_flow(0, 50), mk_flow(1, 50)],
            resilience: None,
            metrics: None,
        };
        assert!(
            (r.jain_fairness() - 1.0).abs() < 1e-12,
            "equal split is fair"
        );
        r.flows = vec![mk_flow(0, 100), mk_flow(1, 0)];
        assert!(
            (r.jain_fairness() - 0.5).abs() < 1e-12,
            "winner-takes-all → 1/n"
        );
    }

    #[test]
    fn latency_summary_orders_and_bounds() {
        assert_eq!(LatencySummary::from_samples(&[]), None);
        let s = LatencySummary::from_samples(&[0.3, 0.1, 0.2]).unwrap();
        assert_eq!(s.count, 3);
        assert!((s.mean_s - 0.2).abs() < 1e-12);
        assert_eq!(s.max_s, 0.3);
        assert_eq!(s.p95_s, 0.3);
        let one = LatencySummary::from_samples(&[0.5]).unwrap();
        assert_eq!((one.p95_s, one.max_s), (0.5, 0.5));
    }
}
