pub use pcmac::*;

/// The declarative scenario + campaign subsystem (`pcmac-campaign`):
/// spec files, grid expansion, aggregating sweep runner.
pub use pcmac_campaign as campaign;
