//! Offline shim for `parking_lot`: a [`Mutex`] whose `lock()` returns the
//! guard directly (poisoning is translated into a panic, which matches
//! parking_lot's abort-on-poisoned-invariant behavior closely enough for
//! the experiment driver).

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// Mutual exclusion with parking_lot's `lock() -> Guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> StdGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }
}
