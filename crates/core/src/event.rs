//! The simulation event vocabulary.

use std::sync::Arc;

use pcmac_engine::{Milliwatts, NodeId, SimTime, TimerToken};
use pcmac_mac::{CtrlFrame, Frame, MacTimerKind};

/// Everything that can be scheduled in the event queue. Events address a
/// single node; cross-node effects only ever happen by scheduling more
/// events (that is what the wireless channel *is*).
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// A frame starts arriving at `node` on the data channel.
    ArrivalStart {
        /// Receiver.
        node: NodeId,
        /// Unique transmission key (pairs with `ArrivalEnd`).
        key: u64,
        /// Received power after path loss.
        power: Milliwatts,
        /// When the arrival completes.
        end: SimTime,
        /// The frame (shared across all receivers of the transmission).
        frame: Arc<Frame>,
    },
    /// The arrival keyed `key` finished at `node`.
    ArrivalEnd {
        /// Receiver.
        node: NodeId,
        /// Transmission key.
        key: u64,
    },
    /// `node`'s own data-channel transmission finished.
    TxEnd {
        /// Transmitter.
        node: NodeId,
    },
    /// A power-control broadcast starts arriving at `node` (PCMAC).
    CtrlArrivalStart {
        /// Receiver.
        node: NodeId,
        /// Transmission key.
        key: u64,
        /// Received power.
        power: Milliwatts,
        /// When the arrival completes.
        end: SimTime,
        /// The control frame.
        frame: CtrlFrame,
    },
    /// Control-channel arrival end.
    CtrlArrivalEnd {
        /// Receiver.
        node: NodeId,
        /// Transmission key.
        key: u64,
    },
    /// `node`'s control-channel broadcast finished.
    CtrlTxEnd {
        /// Transmitter.
        node: NodeId,
    },
    /// A MAC timer fired.
    MacTimer {
        /// Owner.
        node: NodeId,
        /// Which logical timer.
        kind: MacTimerKind,
        /// Liveness token.
        token: TimerToken,
    },
    /// An AODV discovery timer fired.
    AodvTimer {
        /// Owner.
        node: NodeId,
        /// Destination under discovery.
        dst: NodeId,
        /// Liveness token.
        token: TimerToken,
    },
    /// A traffic source is due to emit.
    TrafficEmit {
        /// Source owner.
        node: NodeId,
        /// Index into the node's source list.
        source: usize,
    },
    /// A fault takes `node` down: the node stops transmitting,
    /// receiving, and forwarding until a matching [`SimEvent::NodeUp`]
    /// (if any) brings it back.
    NodeDown {
        /// The crashing node.
        node: NodeId,
    },
    /// A previously crashed node recovers.
    NodeUp {
        /// The recovering node.
        node: NodeId,
    },
    /// Channel impairment burst `index` (into the fault plan's burst
    /// list) becomes active.
    ImpairmentStart {
        /// Burst index.
        index: usize,
    },
    /// Channel impairment burst `index` ends.
    ImpairmentEnd {
        /// Burst index.
        index: usize,
    },
    /// Periodic observability probe: sample channel busy fraction,
    /// queue depths, live-node count, and cumulative offered/delivered
    /// load into the current time-series bucket. Pure read — handling
    /// this event never mutates protocol state, so a metrics-on run is
    /// bit-identical in behavior to a metrics-off run.
    MetricsProbe,
}
