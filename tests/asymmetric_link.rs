//! The paper's Figure 4 asymmetric-link scenario as a regression test:
//! naive power control must suppress the low-power pair; PCMAC must
//! recover it (and buy spatial reuse on top).

use pcmac::{run_parallel, ScenarioConfig, Variant};

fn reports() -> Vec<pcmac::RunReport> {
    let scenarios: Vec<_> = Variant::ALL
        .iter()
        .map(|v| ScenarioConfig::asymmetric_pairs(*v, 1_000_000.0, 7))
        .collect();
    run_parallel(scenarios, 0)
}

#[test]
fn asymmetric_geometry_reproduces_paper_story() {
    let rs = reports();
    let get = |name: &str| rs.iter().find(|r| r.protocol == name).unwrap();
    let basic = get("Basic 802.11");
    let pcmac = get("PCMAC");
    let scheme2 = get("Scheme 2");

    // Basic 802.11: mutual max-power carrier sense keeps both pairs alive.
    assert!(
        basic.flows[0].pdr() > 0.3 && basic.flows[1].pdr() > 0.3,
        "basic must be roughly fair: A→B {:.2} C→D {:.2}",
        basic.flows[0].pdr(),
        basic.flows[1].pdr()
    );

    // Scheme 2 (paper Fig. 4): the high-power pair crushes the low-power
    // pair, which cannot be sensed or protected.
    assert!(
        scheme2.flows[0].pdr() < 0.1,
        "Scheme 2 must suppress A→B (got {:.2})",
        scheme2.flows[0].pdr()
    );
    assert!(scheme2.flows[1].pdr() > 0.9, "C→D thrives under Scheme 2");

    // PCMAC: noise-aware power selection + control channel restore the
    // suppressed pair to a meaningful share.
    assert!(
        pcmac.flows[0].pdr() > 5.0 * scheme2.flows[0].pdr(),
        "PCMAC must recover A→B: {:.3} vs Scheme 2 {:.3}",
        pcmac.flows[0].pdr(),
        scheme2.flows[0].pdr()
    );
    assert!(pcmac.flows[1].pdr() > 0.9, "without starving C→D");

    // Spatial reuse: PCMAC's total beats Basic's serialized sharing.
    assert!(
        pcmac.throughput_kbps > basic.throughput_kbps,
        "PCMAC {:.0} kbps must exceed Basic {:.0} kbps via spatial reuse",
        pcmac.throughput_kbps,
        basic.throughput_kbps
    );

    // The protection machinery actually engaged.
    assert!(pcmac.mac.ctrl_broadcasts > 100);
    assert!(pcmac.mac.ctrl_deferrals > 10);
    assert!(pcmac.mac.power_step_ups > 10);
}

#[test]
fn collisions_are_observable_in_counters() {
    let rs = reports();
    let get = |name: &str| rs.iter().find(|r| r.protocol == name).unwrap();
    // The interference the story rests on must show up as rx errors for
    // the power-controlled schemes, far above Basic's.
    let basic = get("Basic 802.11");
    let scheme2 = get("Scheme 2");
    assert!(
        scheme2.mac.rx_errors > 3 * basic.mac.rx_errors.max(1),
        "Scheme 2 rx errors {} vs basic {}",
        scheme2.mac.rx_errors,
        basic.mac.rx_errors
    );
}
