//! The campaign runner: expand lazily → run in parallel → aggregate.
//!
//! The runner is crash-proof: each `(point × seed)` run executes on its
//! own worker under `catch_unwind` with an optional wall-clock watchdog,
//! so a panicking or hanging point becomes a structured
//! [`PointFailure`] in the report instead of taking the whole sweep
//! down. The watchdog is *cooperative*: an over-budget run is asked to
//! stop via its [`CancelToken`], reaches a safe cut, persists a resume
//! checkpoint, and its worker thread is joined — only a run that
//! ignores the token past the grace period is abandoned the old way.
//!
//! When an output path is given, the aggregated artifact is rewritten
//! (atomically, tmp + rename) after every finished point with
//! `complete: Some(false)`; an interrupted campaign resumes from that
//! partial artifact, skipping every point that already ran cleanly.
//! With [`RunOptions::checkpoint_every`] set, each in-progress run
//! additionally checkpoints its *simulator state* periodically to a
//! sidecar directory, so resuming a killed campaign restarts mid-cell
//! from the newest valid checkpoint instead of recomputing the run.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pcmac::{CancelToken, RunHooks, RunOutcome, RunReport, SimSnapshot, Simulator};
use pcmac_engine::Duration as SimDuration;

use crate::aggregate::{CampaignReport, FailureKind, PointFailure, PointSummary};
use crate::campaign::{CampaignGrid, CampaignSpec};
use crate::spec::SpecError;

/// Everything a campaign produced: the aggregated report (the
/// `CAMPAIGN_*.json` artifact) plus the raw per-run reports for callers
/// that need more than the per-point summaries (the figure harness, flow
/// fairness analyses).
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Per-point aggregation.
    pub report: CampaignReport,
    /// Raw reports of the runs *this invocation executed*, point-major
    /// and seed-minor in expansion order. Failed runs leave no entry,
    /// and on resume the previously-finished points are represented
    /// only by their summaries in `report`.
    pub runs: Vec<RunReport>,
}

/// How [`run_campaign_with`] executes a campaign.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker parallelism; `0` means one per available core.
    pub threads: usize,
    /// Per-run wall-clock budget. A run that exceeds it is abandoned
    /// and recorded as [`FailureKind::TimedOut`]. `None` disables the
    /// watchdog.
    pub timeout: Option<Duration>,
    /// Where to persist the aggregated report incrementally. `None`
    /// skips persistence (the caller writes the final report itself).
    pub out: Option<PathBuf>,
    /// Resume from a partial artifact at `out`: points whose key
    /// matches a summary in the existing report are skipped; points
    /// with recorded failures (or no summary) re-run.
    pub resume: bool,
    /// Checkpoint each in-progress run's simulator state every this
    /// much *simulated* time into a sidecar directory next to `out`
    /// (requires `out`). On resume, a run restarts from its newest
    /// valid checkpoint; corrupt or mismatched checkpoint files fall
    /// back to a full recompute, never a panic.
    pub checkpoint_every: Option<SimDuration>,
    /// How long a cancelled run gets to reach a safe cut before its
    /// thread is abandoned. Defaults to the watchdog timeout itself,
    /// capped at 2 s.
    pub grace: Option<Duration>,
}

/// Per-run control handle passed to the run closure: the cancellation
/// token the watchdog fires, plus this run's checkpoint policy.
/// Closures that drive the simulator themselves should finish with
/// [`JobCtl::run`], which wires all of it up.
pub struct JobCtl {
    /// Cancelled when the run exceeds its wall-clock budget; a
    /// cooperative run observes it at a cut and stops cleanly.
    pub cancel: CancelToken,
    /// Periodic checkpoint interval in simulated time, if enabled.
    pub checkpoint_every: Option<SimDuration>,
    /// This run's checkpoint file, if persistence is enabled.
    pub checkpoint_file: Option<PathBuf>,
}

impl JobCtl {
    /// The standard resilient run: restore from this job's checkpoint
    /// when a valid one exists (anything corrupt, truncated, or
    /// belonging to a different scenario falls back to a fresh run —
    /// structured, never a panic), checkpoint periodically, and stop
    /// cleanly at a cut when cancelled — persisting the cut state so
    /// the run resumes instead of recomputing.
    pub fn run(&self, cfg: pcmac::ScenarioConfig) -> RunOutcome {
        let sim = match self.load_checkpoint(&cfg) {
            Some(snap) => Simulator::restore(cfg.clone(), &snap)
                .unwrap_or_else(|_| Simulator::new(cfg.clone())),
            None => Simulator::new(cfg.clone()),
        };
        let sink = |snap: SimSnapshot| {
            if let Some(path) = &self.checkpoint_file {
                // Best-effort: a failed checkpoint write only costs
                // resume granularity, not the run.
                let _ = write_atomic_bytes(path, &snap.to_bytes());
            }
        };
        let sink_ref: &(dyn Fn(SimSnapshot) + Sync) = &sink;
        let outcome = sim.run_with_hooks(RunHooks {
            cancel: Some(&self.cancel),
            checkpoint_every: self.checkpoint_every,
            checkpoint_sink: self.checkpoint_file.is_some().then_some(sink_ref),
        });
        match &outcome {
            // A finished run's checkpoint is stale state: remove it so
            // a later resume of the campaign cannot trip over it.
            RunOutcome::Completed(_) => {
                if let Some(path) = &self.checkpoint_file {
                    let _ = std::fs::remove_file(path);
                }
            }
            RunOutcome::Cancelled(Some(snap)) => {
                if let Some(path) = &self.checkpoint_file {
                    let _ = write_atomic_bytes(path, &snap.to_bytes());
                }
            }
            RunOutcome::Cancelled(None) => {}
        }
        outcome
    }

    /// The newest valid checkpoint for this job, if any.
    fn load_checkpoint(&self, cfg: &pcmac::ScenarioConfig) -> Option<SimSnapshot> {
        let bytes = std::fs::read(self.checkpoint_file.as_ref()?).ok()?;
        let snap = SimSnapshot::from_bytes(&bytes).ok()?;
        snap.matches(cfg).then_some(snap)
    }
}

fn worker_count(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    }
}

/// Expand `spec` and run every `(point × seed)` with the stock
/// simulator — no watchdog, no persistence. Thin wrapper over
/// [`run_campaign_with`] kept for the figure/ablation drivers.
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> Result<CampaignOutcome, SpecError> {
    run_campaign_with(
        spec,
        RunOptions {
            threads,
            ..RunOptions::default()
        },
        |cfg, ctl| ctl.run(cfg),
    )
}

/// One `(cell × seed)` job.
#[derive(Clone, Copy)]
struct Job {
    cell: usize,
    seed: u64,
}

/// Per-cell accumulation while the sweep drains.
#[derive(Default)]
struct CellProgress {
    /// Successful reports, tagged with their job index for final
    /// ordering.
    ok: Vec<(usize, RunReport)>,
    /// Failures of this cell's seeds.
    failed: Vec<PointFailure>,
    resolved: usize,
}

/// Bookkeeping shared by the dispatch loop and the incremental
/// persistence path.
struct SweepState<'a> {
    grid: &'a CampaignGrid,
    campaign: String,
    /// Finished summaries by cell index (resumed points pre-filled).
    done: Vec<Option<PointSummary>>,
    progress: HashMap<usize, CellProgress>,
    wall_s: f64,
}

impl SweepState<'_> {
    fn record_failure(&mut self, job: Job, kind: FailureKind, error: String) {
        let p = self.progress.entry(job.cell).or_default();
        p.failed.push(PointFailure {
            key: self.grid.cells[job.cell].key.clone(),
            seed: Some(job.seed),
            kind,
            error,
        });
        p.resolved += 1;
    }

    fn record_success(&mut self, job: Job, id: usize, report: RunReport) {
        self.wall_s += report.wall_s;
        let p = self.progress.entry(job.cell).or_default();
        p.ok.push((id, report));
        p.resolved += 1;
    }

    /// All failures recorded so far, cell-major / seed-minor.
    fn failures(&self) -> Vec<PointFailure> {
        let mut by_cell: Vec<(usize, &CellProgress)> =
            self.progress.iter().map(|(&i, p)| (i, p)).collect();
        by_cell.sort_unstable_by_key(|&(i, _)| i);
        by_cell
            .into_iter()
            .flat_map(|(_, p)| p.failed.iter().cloned())
            .collect()
    }

    fn report(&self, complete: bool) -> CampaignReport {
        let points: Vec<PointSummary> = self.done.iter().flatten().cloned().collect();
        let failures = self.failures();
        CampaignReport {
            campaign: self.campaign.clone(),
            runs: points.iter().map(|s| s.seeds.len()).sum(),
            duration_s: self
                .grid
                .cells
                .first()
                .map(|c| c.spec.duration_s)
                .unwrap_or(0.0),
            wall_s: self.wall_s,
            points,
            complete: Some(complete),
            failures: (!failures.is_empty()).then_some(failures),
        }
    }

    /// When every seed of `cell` has resolved, collapse the clean cell
    /// into its summary and (with an output path set) persist the
    /// partial report so an interrupted campaign can resume from it.
    fn finish_cell_if_done(&mut self, cell: usize, out: Option<&Path>) {
        let Some(p) = self.progress.get(&cell) else {
            return;
        };
        if p.resolved < self.grid.seeds.len() {
            return;
        }
        if p.failed.is_empty() {
            let reports: Vec<RunReport> = p.ok.iter().map(|(_, r)| r.clone()).collect();
            self.done[cell] = Some(PointSummary::from_reports(
                self.grid.cells[cell].key.clone(),
                self.grid.seeds.clone(),
                &reports,
            ));
        }
        if let Some(path) = out {
            // Persistence is best-effort mid-run: a full disk surfaces
            // at the final write, which does propagate the error.
            let _ = write_atomic(path, &self.report(false).to_json());
        }
    }
}

/// Expand `spec` into its grid skeleton and run every `(point × seed)`
/// through `run` (`threads == 0` means one per core), isolating each
/// run so one bad point cannot abort the sweep:
///
/// * a panic inside `run` is caught and recorded as
///   [`FailureKind::Panicked`];
/// * a run outliving [`RunOptions::timeout`] has its [`JobCtl::cancel`]
///   token fired; a cooperative run stops cleanly at a cut (recorded as
///   [`FailureKind::TimedOut`] with the clean-stop cut noted, its
///   thread joined, its checkpoint retained for resume), while a run
///   that ignores the token past the grace period is abandoned the old
///   way — its late result is discarded;
/// * a spec that fails to materialize is recorded as
///   [`FailureKind::Invalid`].
///
/// Each point's seeds are aggregated with mean / stddev / 95% CI per
/// metric; with [`RunOptions::out`] set, the partial report is
/// persisted after every finished point so an interrupted campaign
/// resumes ([`RunOptions::resume`]) without recomputing clean points —
/// and, with [`RunOptions::checkpoint_every`], without recomputing the
/// finished prefix of in-progress runs.
pub fn run_campaign_with<F>(
    spec: &CampaignSpec,
    opts: RunOptions,
    run: F,
) -> Result<CampaignOutcome, SpecError>
where
    F: Fn(pcmac::ScenarioConfig, &JobCtl) -> RunOutcome + Send + Sync + 'static,
{
    let grid = spec.grid()?;
    let mut state = SweepState {
        grid: &grid,
        campaign: spec.name.clone(),
        done: vec![None; grid.cells.len()],
        progress: HashMap::new(),
        wall_s: 0.0,
    };

    // Resume: lift finished points (and the wall-clock already spent)
    // out of a partial artifact; anything failed or missing re-runs.
    if let (Some(path), true) = (&opts.out, opts.resume) {
        if let Some(report) = load_partial(path, &spec.name) {
            state.wall_s = report.wall_s;
            for summary in report.points {
                if let Some(i) = grid.cells.iter().position(|c| c.key == summary.key) {
                    state.done[i] = Some(summary);
                }
            }
        }
    }

    let jobs: Vec<Job> = grid
        .cells
        .iter()
        .enumerate()
        .filter(|&(i, _)| state.done[i].is_none())
        .flat_map(|(i, _)| grid.seeds.iter().map(move |&seed| Job { cell: i, seed }))
        .collect();

    let run = Arc::new(run);
    let threads = worker_count(opts.threads).max(1);
    let out = opts.out.as_deref();
    // Sidecar directory for within-run checkpoints, next to the
    // artifact: CAMPAIGN_x.json → CAMPAIGN_x.ckpt/cellNNN_seedS.snap.
    let ckpt_dir: Option<PathBuf> = match (&opts.out, opts.checkpoint_every) {
        (Some(path), Some(_)) => {
            let dir = path.with_extension("ckpt");
            std::fs::create_dir_all(&dir)
                .map_err(|e| SpecError::one(format!("create {}: {e}", dir.display())))?;
            Some(dir)
        }
        _ => None,
    };
    let budget_s = opts.timeout.map(|t| t.as_secs_f64()).unwrap_or(0.0);
    let grace = opts.grace.unwrap_or_else(|| {
        opts.timeout
            .unwrap_or(Duration::from_secs(2))
            .min(Duration::from_secs(2))
    });

    struct InFlight {
        id: usize,
        deadline: Option<Instant>,
        cancel: CancelToken,
        handle: std::thread::JoinHandle<()>,
        /// The watchdog has fired; `deadline` is now the grace deadline.
        cancelled: bool,
    }

    let (result_tx, result_rx) = mpsc::channel::<(usize, std::thread::Result<RunOutcome>)>();
    // Jobs whose grace period expired; late results from their (still
    // running, but abandoned) threads are discarded on arrival.
    let mut abandoned: Vec<usize> = Vec::new();
    let mut in_flight: Vec<InFlight> = Vec::new();
    let mut next_job = 0usize;
    let mut resolved_jobs = 0usize;

    while resolved_jobs < jobs.len() {
        // Keep the worker budget full. Materialization failures resolve
        // immediately (no thread) as Invalid.
        while in_flight.len() < threads && next_job < jobs.len() {
            let id = next_job;
            next_job += 1;
            let job = jobs[id];
            match grid.cells[job.cell].spec.materialize(job.seed) {
                Err(e) => {
                    state.record_failure(job, FailureKind::Invalid, e.problems.join("; "));
                    resolved_jobs += 1;
                    state.finish_cell_if_done(job.cell, out);
                }
                Ok(cfg) => {
                    let tx = result_tx.clone();
                    let run = Arc::clone(&run);
                    let ctl = JobCtl {
                        cancel: CancelToken::new(),
                        checkpoint_every: opts.checkpoint_every,
                        checkpoint_file: ckpt_dir
                            .as_ref()
                            .map(|d| d.join(format!("cell{:03}_seed{}.snap", job.cell, job.seed))),
                    };
                    let cancel = ctl.cancel.clone();
                    let handle = std::thread::spawn(move || {
                        let outcome = catch_unwind(AssertUnwindSafe(|| run(cfg, &ctl)));
                        // The receiver outlives us unless we were
                        // abandoned; either way a failed send is fine.
                        let _ = tx.send((id, outcome));
                    });
                    in_flight.push(InFlight {
                        id,
                        deadline: opts.timeout.map(|t| Instant::now() + t),
                        cancel,
                        handle,
                        cancelled: false,
                    });
                }
            }
        }
        if in_flight.is_empty() {
            continue; // every dispatched job resolved synchronously
        }

        let next_deadline = in_flight.iter().filter_map(|f| f.deadline).min();
        let received = match next_deadline {
            None => result_rx.recv().ok(),
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                match result_rx.recv_timeout(wait) {
                    Ok(r) => Some(r),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        unreachable!("runner holds a live sender")
                    }
                }
            }
        };

        match received {
            Some((id, result)) => {
                if let Some(pos) = abandoned.iter().position(|&a| a == id) {
                    abandoned.swap_remove(pos); // late result of a timed-out run
                    continue;
                }
                let Some(pos) = in_flight.iter().position(|f| f.id == id) else {
                    continue;
                };
                let fl = in_flight.swap_remove(pos);
                // The worker has sent its result and is exiting; the
                // join is immediate and guarantees no resolved run ever
                // leaks a thread past the sweep.
                let _ = fl.handle.join();
                let job = jobs[id];
                match result {
                    Ok(RunOutcome::Completed(report)) => state.record_success(job, id, report),
                    Ok(RunOutcome::Cancelled(snap)) => {
                        // The cooperative path: the run heard its token,
                        // stopped at a cut, and its state survives for a
                        // resumed campaign to pick up.
                        let cut = snap
                            .map(|s| {
                                format!(
                                    "; stopped cleanly at the t = {:.3} s cut \
                                     (checkpoint retained for resume)",
                                    s.time().as_nanos() as f64 / 1e9
                                )
                            })
                            .unwrap_or_else(|| "; stopped cleanly".into());
                        state.record_failure(
                            job,
                            FailureKind::TimedOut,
                            format!("exceeded the {budget_s:.1} s wall-clock budget{cut}"),
                        );
                    }
                    Err(payload) => state.record_failure(
                        job,
                        FailureKind::Panicked,
                        panic_message(payload.as_ref()),
                    ),
                }
                resolved_jobs += 1;
                state.finish_cell_if_done(job.cell, out);
            }
            None => {
                let now = Instant::now();
                // First strike: fire the token and start the grace
                // clock. A cooperative run reaches a cut and resolves
                // through the ordinary result path above.
                for f in in_flight.iter_mut() {
                    if !f.cancelled && f.deadline.is_some_and(|d| d <= now) {
                        f.cancel.cancel();
                        f.cancelled = true;
                        f.deadline = Some(now + grace);
                    }
                }
                // Second strike: the grace period passed without the
                // run reaching a cut — it is stuck in non-cooperative
                // code. Abandon it the old way (there is no portable
                // way to kill a thread); its eventual result is
                // discarded on arrival.
                let mut i = 0;
                while i < in_flight.len() {
                    if in_flight[i].cancelled && in_flight[i].deadline.is_some_and(|d| d <= now) {
                        let fl = in_flight.swap_remove(i);
                        abandoned.push(fl.id);
                        drop(fl.handle); // detached
                        state.record_failure(
                            jobs[fl.id],
                            FailureKind::TimedOut,
                            format!(
                                "exceeded the {budget_s:.1} s wall-clock budget and ignored \
                                 cancellation for {:.1} s; thread abandoned",
                                grace.as_secs_f64()
                            ),
                        );
                        resolved_jobs += 1;
                        state.finish_cell_if_done(jobs[fl.id].cell, out);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    let report = state.report(state.failures().is_empty());
    if let Some(path) = out {
        write_atomic(path, &report.to_json()).map_err(SpecError::one)?;
    }
    if report.complete == Some(true) {
        if let Some(dir) = &ckpt_dir {
            // Every run finished, so every checkpoint was consumed; the
            // empty sidecar directory has nothing left to say.
            let _ = std::fs::remove_dir(dir);
        }
    }

    // Raw reports of this invocation, point-major / seed-minor.
    let mut runs_tagged: Vec<(usize, RunReport)> =
        state.progress.into_values().flat_map(|p| p.ok).collect();
    runs_tagged.sort_unstable_by_key(|&(id, _)| id);
    let runs = runs_tagged.into_iter().map(|(_, r)| r).collect();

    Ok(CampaignOutcome { report, runs })
}

/// A run panicked; pull the human-readable message out of the payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "run panicked (non-string payload)".to_string()
    }
}

/// Parse a resumable partial artifact: it must exist, parse, belong to
/// this campaign, and be explicitly incomplete.
fn load_partial(path: &Path, campaign: &str) -> Option<CampaignReport> {
    let text = std::fs::read_to_string(path).ok()?;
    let report = CampaignReport::from_json(&text).ok()?;
    (report.campaign == campaign && report.complete == Some(false)).then_some(report)
}

/// Crash-consistent write: the artifact is either the old version or
/// the new one, never a torn half.
fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))
}

/// [`write_atomic`] for binary checkpoint files: a reader never sees a
/// torn snapshot, only the previous one or the new one (a kill between
/// write and rename leaves a `.tmp` that no reader touches).
fn write_atomic_bytes(path: &Path, contents: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension("snap.tmp");
    std::fs::write(&tmp, contents).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        MobilitySpec, NodesSpec, PlacementSpec, ScenarioSpec, TrafficPattern, TrafficSpec,
    };
    use crate::AxesSpec;
    use pcmac::{FlowShape, Variant};

    fn tiny_campaign() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".into(),
            base: ScenarioSpec {
                name: "tiny".into(),
                variant: Variant::Basic,
                duration_s: 2.0,
                field: (500.0, 500.0),
                nodes: NodesSpec {
                    count: Some(4),
                    placement: PlacementSpec::Ring { radius: 80.0 },
                    mobility: None,
                },
                traffic: TrafficSpec {
                    pattern: TrafficPattern::NeighbourPairs { flows: 2 },
                    bytes: 512,
                    offered_load_kbps: 100.0,
                    shape: FlowShape::Cbr,
                },
                power_levels_mw: None,
                shadowing: None,
                protocol: None,
                radio: None,
                aodv: None,
                faults: None,
                metrics: None,
                trace: None,
                execution: None,
            },
            duration_s: None,
            seeds: vec![1, 2],
            axes: Some(AxesSpec {
                loads_kbps: Some(vec![50.0, 100.0]),
                ..AxesSpec::default()
            }),
            sweep: None,
        }
    }

    #[test]
    fn runner_aggregates_every_point() {
        let spec = tiny_campaign();
        assert_eq!(spec.run_count(), 4);
        let outcome = run_campaign(&spec, 0).expect("runs");
        assert_eq!(outcome.runs.len(), 4);
        assert_eq!(outcome.report.points.len(), 2);
        assert_eq!(outcome.report.complete, Some(true));
        assert!(outcome.report.failures.is_none());
        for p in &outcome.report.points {
            assert_eq!(p.seeds, vec![1, 2]);
            assert!(p.throughput_kbps.mean > 0.0, "static ring delivers");
            assert!(p.pdr.mean > 0.0);
            assert!(p.throughput_kbps.ci95.is_finite());
        }
        // Points follow expansion order: load 50 then load 100.
        assert_eq!(outcome.report.points[0].key.load_kbps, 50.0);
        assert_eq!(outcome.report.points[1].key.load_kbps, 100.0);
    }

    #[test]
    fn mobility_spec_on_generated_placement_runs() {
        let mut spec = tiny_campaign();
        spec.base.nodes.mobility = Some(MobilitySpec {
            speed_mps: 2.0,
            pause_s: 1.0,
        });
        spec.axes = None;
        spec.seeds = vec![3];
        let outcome = run_campaign(&spec, 0).expect("mobile ring runs");
        assert_eq!(outcome.runs.len(), 1);
        assert!(outcome.runs[0].sent_packets > 0);
    }

    #[test]
    fn patch_axis_campaign_runs_and_keys_each_point() {
        use serde::Value;
        let mut spec = tiny_campaign();
        spec.base.variant = Variant::Pcmac;
        spec.axes = None;
        spec.seeds = vec![1];
        spec.sweep = Some(vec![crate::Axis::Patch {
            path: "mac.pcmac.safety_factor".into(),
            values: vec![Value::F64(0.5), Value::F64(0.9)],
        }]);
        let outcome = run_campaign(&spec, 0).expect("patch sweep runs");
        assert_eq!(outcome.runs.len(), 2);
        assert_eq!(outcome.report.points.len(), 2);
        let labels: Vec<String> = outcome
            .report
            .points
            .iter()
            .map(|p| p.key.patches_label())
            .collect();
        assert_eq!(labels, vec!["safety_factor=0.5", "safety_factor=0.9"]);
    }
}
