//! Spatial-domain parallel execution: one scenario, every core,
//! bit-identical to the single-threaded reference.
//!
//! # How it works
//!
//! The field is split into vertical column bands — one region per worker
//! thread, boundaries snapped to spatial-index columns, balanced by node
//! count ([`pcmac_shard::partition_columns`]). Every worker builds the
//! *full* scenario replica (construction is deterministic, so replicas
//! are identical), then discards the build-time events of nodes it does
//! not own ([`Simulator`]'s `prepare_shard`). At runtime a shard
//! dispatches only events addressing its own nodes; when an owned node
//! transmits, the sender loop runs exactly as in single mode — mobility
//! is a pure function of `(seed, t)` and gains are pure functions of
//! positions, so the shard computes every receiver's power and delay
//! bit-identically — and arrivals destined for foreign nodes are shipped
//! to their owner as ready-made events instead of being scheduled
//! locally.
//!
//! # The synchronization protocol
//!
//! Conservative barrier-epoch windows. Every propagation delay is
//! floored at δ = [`ScenarioConfig::delay_floor`] (the scenario's
//! *lookahead*), and arrivals are the only cross-region channel, so an
//! event at `t` can only influence foreign events at `t ≥ t + δ`:
//!
//! 1. each shard publishes the due time of its next event;
//! 2. barrier; the window start `ws` is the global minimum — when every
//!    queue is drained past the run end, the run is over;
//! 3. each shard dispatches every local event in `[ws, ws + δ)`,
//!    accumulating outgoing arrivals per destination shard;
//! 4. outboxes are flushed into per-pair mailboxes; barrier;
//! 5. each shard drains its mailboxes in fixed sender order, culling
//!    each shipment against its authoritative down-state at the sender's
//!    transmit instant, and scheduling the survivors under their
//!    content-derived ranks.
//!
//! Shipments land at `ws + δ` or later, so nothing a neighbour did
//! inside a window can affect events already dispatched — and since
//! same-instant order is a pure function of event content (see
//! `SimEvent::rank`), every event pops from its owner's queue in exactly
//! the global reference position. Merging per-shard results is then
//! owner-selection (per-node state), summation (counters), or key-sorted
//! replay (fault records, trace), all in fixed shard order with no
//! wall-clock input anywhere.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pcmac_phy::SparseCacheStats;
use pcmac_shard::{partition_columns, SpinBarrier};

use pcmac_engine::SimTime;

use crate::event::SimEvent;
use crate::metrics::MetricsState;
use crate::node::Node;
use crate::report::RunReport;
use crate::sim::{FaultState, ShardParts, Shipment, Simulator};

/// A shard's buffered dispatch stream: `(time, rank, event)` per event.
type TracedEvents = Vec<(SimTime, u128, SimEvent)>;

/// Optional sink receiving the merged event stream after the run.
type EventObserver<'a> = Option<&'a mut dyn FnMut(&SimEvent, SimTime)>;

/// Execute `sim` as `shards` region shards and merge the report.
///
/// `observer`, when given, receives the merged event stream after the
/// run (per-shard streams are buffered and replayed in global
/// `(time, rank)` order — the exact single-threaded dispatch order).
pub(crate) fn run_sharded(sim: Simulator, shards: usize, observer: EventObserver<'_>) -> RunReport {
    let wall_start = std::time::Instant::now();
    let shards = shards.max(1);
    let cfg = sim.cfg().clone();
    let end = SimTime::ZERO + cfg.duration;
    let floor_ns = cfg.delay_floor().as_nanos();
    assert!(
        floor_ns > 0,
        "sharded execution requires a positive delay floor (validated at build)"
    );
    let owner: Arc<Vec<u32>> = Arc::new(partition_columns(
        &sim.start_xs(),
        cfg.field.0,
        sim.shard_cell_size(),
        shards,
    ));
    let collect_trace = observer.is_some();

    let peeks: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
    // mail[to][from]: written by `from` between the window's two
    // barriers, drained by `to` after the second — never contended.
    let mail: Vec<Vec<Mutex<Vec<Shipment>>>> = (0..shards)
        .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let barrier = SpinBarrier::new(shards);

    let results: Vec<(ShardParts, TracedEvents)> = std::thread::scope(|scope| {
        let mut seed_sim = Some(sim);
        let mut handles = Vec::with_capacity(shards);
        for k in 0..shards {
            let cfg = cfg.clone();
            let owner = Arc::clone(&owner);
            let (barrier, peeks, mail) = (&barrier, &peeks, &mail);
            let first = seed_sim.take();
            handles.push(scope.spawn(move || {
                // Shard 0 reuses the caller's simulator; the rest
                // build their own replica (deterministic, identical).
                let mut s = match first {
                    Some(s) => s,
                    None => Simulator::new(cfg),
                };
                s.prepare_shard(k as u32, shards, owner);
                let mut trace = collect_trace.then(Vec::new);
                loop {
                    peeks[k].store(s.shard_peek_ns(end), Ordering::SeqCst);
                    barrier.wait();
                    let ws = peeks
                        .iter()
                        .map(|p| p.load(Ordering::SeqCst))
                        .min()
                        .expect("at least one shard");
                    if ws == u64::MAX {
                        break; // every queue drained past the end
                    }
                    s.run_window(ws.saturating_add(floor_ns), end, trace.as_mut());
                    for (to, batch) in s.take_outboxes().into_iter().enumerate() {
                        if !batch.is_empty() {
                            *mail[to][k].lock().expect("mailbox") = batch;
                        }
                    }
                    barrier.wait();
                    let incoming: Vec<Vec<Shipment>> = mail[k]
                        .iter()
                        .map(|m| std::mem::take(&mut *m.lock().expect("mailbox")))
                        .collect();
                    s.accept_shipments(incoming);
                }
                (s.into_shard_parts(end), trace.unwrap_or_default())
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    let mut parts = Vec::with_capacity(shards);
    let mut traces = Vec::with_capacity(shards);
    for (p, t) in results {
        parts.push(p);
        traces.push(t);
    }

    // Replicated impairment bursts are scheduled once per shard; every
    // other scheduled event exists on exactly one shard (probe chains
    // were already subtracted per shard, like in single mode).
    let n_bursts = cfg
        .faults
        .as_ref()
        .and_then(|f| f.impairments.as_ref())
        .map_or(0, Vec::len) as u64;
    let events = parts.iter().map(|p| p.events).sum::<u64>() - (shards as u64 - 1) * 2 * n_bursts;
    let sent = parts.iter().map(|p| p.sent_packets).sum::<u64>();

    // Per-node state: each node's owner holds the authoritative replica.
    let n = owner.len();
    let mut pools: Vec<Vec<Option<Node>>> = parts
        .iter_mut()
        .map(|p| std::mem::take(&mut p.nodes).into_iter().map(Some).collect())
        .collect();
    let nodes: Vec<Node> = (0..n)
        .map(|i| pools[owner[i] as usize][i].take().expect("owned node"))
        .collect();

    let fault_parts: Vec<FaultState> = parts.iter_mut().filter_map(|p| p.faults.take()).collect();
    let resilience = if fault_parts.is_empty() {
        None
    } else {
        Some(FaultState::merge(fault_parts, &owner).into_report())
    };

    // Sparse-cache effectiveness is an execution-strategy diagnostic
    // (each shard ran its own cache); sum the counters.
    let mut cache: Option<SparseCacheStats> = None;
    for p in &parts {
        if let Some(cs) = p.cache_stats {
            match &mut cache {
                None => cache = Some(cs),
                Some(acc) => {
                    acc.hits += cs.hits;
                    acc.misses += cs.misses;
                    acc.blocks += cs.blocks;
                    acc.entries += cs.entries;
                    acc.flushes += cs.flushes;
                }
            }
        }
    }

    let metric_parts: Vec<MetricsState> =
        parts.iter_mut().filter_map(|p| p.metrics.take()).collect();
    let metrics = if metric_parts.is_empty() {
        None
    } else {
        Some(MetricsState::merge(metric_parts).finish(&nodes, cache))
    };

    if let Some(obs) = observer {
        let mut all: Vec<(SimTime, u128, SimEvent)> = traces.into_iter().flatten().collect();
        // Stable: same-key events (necessarily same-shard, same-node)
        // keep their shard-local dispatch order.
        all.sort_by_key(|&(t, r, _)| (t, r));
        for (at, _, ev) in &all {
            obs(ev, *at);
        }
    }

    RunReport::build(
        &cfg,
        &nodes,
        sent,
        events,
        wall_start.elapsed().as_secs_f64(),
        resilience,
        metrics,
    )
}
