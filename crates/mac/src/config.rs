//! MAC configuration: the four protocol variants of the evaluation.

use pcmac_engine::{Duration, Milliwatts};
use pcmac_phy::PowerLevels;
use serde::{Deserialize, Serialize};

use crate::power::PowerPolicy;
use crate::timing::Dot11Timing;

/// Which of the paper's four MAC protocols a node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Unmodified IEEE 802.11: all frames at maximum power, four-way
    /// handshake.
    Basic,
    /// "Scheme 1": RTS/CTS at maximum power, DATA/ACK at the needed level.
    Scheme1,
    /// "Scheme 2": every unicast frame at the needed level.
    Scheme2,
    /// The paper's contribution: Scheme 2's power discipline plus the
    /// power-control channel and the three-way data handshake.
    Pcmac,
}

impl Variant {
    /// All four, in the paper's presentation order.
    pub const ALL: [Variant; 4] = [
        Variant::Basic,
        Variant::Pcmac,
        Variant::Scheme1,
        Variant::Scheme2,
    ];

    /// The per-frame power policy of this variant.
    pub fn power_policy(self) -> PowerPolicy {
        match self {
            Variant::Basic => PowerPolicy::AllMax,
            Variant::Scheme1 => PowerPolicy::RtsCtsMax,
            Variant::Scheme2 | Variant::Pcmac => PowerPolicy::AllNeeded,
        }
    }

    /// `true` when the variant learns per-neighbour power levels.
    pub fn uses_power_history(self) -> bool {
        !matches!(self, Variant::Basic)
    }

    /// `true` for PCMAC's control channel + three-way handshake machinery.
    pub fn is_pcmac(self) -> bool {
        matches!(self, Variant::Pcmac)
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Basic => "Basic 802.11",
            Variant::Scheme1 => "Scheme 1",
            Variant::Scheme2 => "Scheme 2",
            Variant::Pcmac => "PCMAC",
        }
    }
}

/// PCMAC-specific parameters (paper §III).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PcmacParams {
    /// The redundancy coefficient on the advertised tolerance (0.7).
    pub safety_factor: f64,
    /// Capture threshold η_cp used in the tolerance computation (10).
    pub capture_ratio: f64,
    /// Power-control channel bandwidth (500 kbps).
    pub ctrl_rate_bps: u64,
    /// Power history entry lifetime (3 s).
    pub history_expiry: Duration,
    /// Cap on implicit-ack retransmissions of one stored packet.
    pub max_retx: u8,
    /// Ablation: keep the four-way handshake (ACKs) even under PCMAC,
    /// isolating the contribution of the three-way handshake. The paper's
    /// protocol sets this `false`.
    pub four_way_handshake: bool,
}

impl Default for PcmacParams {
    fn default() -> Self {
        PcmacParams {
            safety_factor: 0.7,
            capture_ratio: 10.0,
            ctrl_rate_bps: 500_000,
            history_expiry: Duration::from_secs(3),
            max_retx: 4,
            four_way_handshake: false,
        }
    }
}

/// Full MAC configuration for one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MacConfig {
    /// Protocol variant.
    pub variant: Variant,
    /// 802.11 timing parameters.
    pub timing: Dot11Timing,
    /// Discrete transmit power classes.
    pub levels: PowerLevels,
    /// Decode threshold of the radio (needed-power computations).
    pub rx_thresh: Milliwatts,
    /// Interface queue capacity (ns-2: 50).
    pub queue_capacity: usize,
    /// dot11RTSThreshold: unicast frames whose on-air size is at most
    /// this many bytes skip the RTS/CTS exchange and go straight to
    /// DATA(+ACK). `0` (the paper's and ns-2's setting) forces RTS for
    /// everything. PCMAC data frames always use RTS — the CTS carries the
    /// implicit acknowledgment the three-way handshake depends on.
    pub rts_threshold: u32,
    /// PCMAC parameters (ignored by other variants).
    pub pcmac: PcmacParams,
}

impl MacConfig {
    /// The paper's configuration for a given variant.
    pub fn paper_default(variant: Variant) -> Self {
        MacConfig {
            variant,
            timing: Dot11Timing::ns2_default(),
            levels: PowerLevels::paper_defaults(),
            rx_thresh: Milliwatts(3.652e-7),
            queue_capacity: 50,
            rts_threshold: 0,
            pcmac: PcmacParams::default(),
        }
    }

    /// Maximum ("normal") power level.
    pub fn max_power(&self) -> Milliwatts {
        self.levels.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerPolicy;

    #[test]
    fn variant_policies() {
        assert_eq!(Variant::Basic.power_policy(), PowerPolicy::AllMax);
        assert_eq!(Variant::Scheme1.power_policy(), PowerPolicy::RtsCtsMax);
        assert_eq!(Variant::Scheme2.power_policy(), PowerPolicy::AllNeeded);
        assert_eq!(Variant::Pcmac.power_policy(), PowerPolicy::AllNeeded);
    }

    #[test]
    fn only_pcmac_gets_the_control_channel() {
        assert!(Variant::Pcmac.is_pcmac());
        assert!(!Variant::Basic.is_pcmac());
        assert!(!Variant::Scheme1.is_pcmac());
        assert!(!Variant::Scheme2.is_pcmac());
    }

    #[test]
    fn basic_does_not_learn_power() {
        assert!(!Variant::Basic.uses_power_history());
        assert!(Variant::Scheme1.uses_power_history());
    }

    #[test]
    fn paper_defaults_match_section_iv() {
        let c = MacConfig::paper_default(Variant::Pcmac);
        assert_eq!(c.queue_capacity, 50);
        assert_eq!(c.pcmac.ctrl_rate_bps, 500_000);
        assert!((c.pcmac.safety_factor - 0.7).abs() < 1e-12);
        assert_eq!(c.pcmac.history_expiry, Duration::from_secs(3));
        assert!((c.max_power().value() - 281.83815).abs() < 1e-9);
    }
}
