//! `pcmac-campaign` — run declarative scenario campaigns from spec files.
//!
//! ```text
//! pcmac-campaign run <campaign.json> [--threads N] [--out FILE]
//! pcmac-campaign expand <campaign.json>
//! pcmac-campaign validate <campaign.json>
//! pcmac-campaign scenario <scenario.json> [--seed S]
//! pcmac-campaign dashboard [DIR] [--baseline DIR] [--band PCT]
//! pcmac-campaign example
//! ```

use std::process::ExitCode;

use pcmac::{ExecutionMode, MetricsConfig, ScenarioConfig, Simulator, TraceWriter};
use pcmac_campaign::{
    bisect_configs, cli, dashboard, run_campaign_with, AxesSpec, Axis, CampaignSpec,
    MetricsArtifact, RunOptions, ScenarioSpec,
};

const USAGE: &str = "\
usage: pcmac-campaign <command> [args]

commands:
  run <campaign.json> [--threads N] [--out FILE] [--timeout SECS]
                      [--duration SECS] [--fresh] [--metrics] [--shards N]
                      [--checkpoint-interval SECS]
        expand the campaign, run every point x seed in parallel, print the
        aggregated table and write CAMPAIGN_<name>.json (or FILE). The
        artifact is persisted after every finished point; rerunning with
        the same output path resumes an interrupted campaign (--fresh
        recomputes from scratch). --timeout abandons runs that exceed the
        wall-clock budget; --duration overrides the simulated seconds per
        run (smoke-shrinking a published campaign). Panicking, hanging,
        and invalid points are recorded as structured failures (exit 1)
        without aborting the sweep. --metrics turns on the observability
        layer for every run (behaviour-identical; see the README's
        Observability section) and additionally writes
        METRICS_<name>.json with the per-run metrics. --shards runs every
        scenario on the region-sharded parallel engine (bit-identical to
        single-threaded; supplies a 10 us delay floor when the spec sets
        none, so only specs already carrying a floor are comparable to
        their unsharded runs). --checkpoint-interval additionally
        checkpoints every in-progress run's simulator state that often
        (simulated seconds) into a sidecar <out>.ckpt/ directory, so a
        killed campaign resumes mid-run from the newest checkpoint
        instead of recomputing the cell; timed-out runs stop cleanly at
        a checkpoint cut. Checkpoint files are host-independent.
  expand <campaign.json>
        print the grid a campaign expands to, without running it
  validate <campaign.json>
        check the spec and every expanded grid cell; exit 0 when clean,
        1 with the full aggregated defect list, one problem per line
  scenario <scenario.json> [--seed S] [--shards N]
        materialize and run a single ScenarioSpec (default seed 1;
        --shards as for `run`). A
        spec with a `metrics` section reports its observability metrics;
        one with a `trace` section also writes TRACE_<name>.txt
  bisect <a.json> <b.json> [--seed S] [--interval SECS]
        localize the first divergent event between two ScenarioSpecs
        that are expected to be bit-identical: run both with periodic
        state fingerprints (every --interval simulated seconds, default
        duration/32), binary-search the cuts for the last common state,
        replay both from it, and report the first divergent event's
        time, class, node, and rank. Exit 0 when the runs are
        bit-identical, 1 with the triage report when they diverge
  dashboard [DIR] [--baseline DIR] [--band PCT] [--out FILE]
        render the BENCH_*.json / CAMPAIGN_*.json / METRICS_*.json
        artifacts in DIR (default .) into markdown (default
        DIR/DASHBOARD.md; `-` prints to stdout). With --baseline, gate:
        compare bench speedups and METRICS events/sec against the
        baseline directory's artifacts and exit 1 if any fell more than
        --band percent (default 20) below it
  example
        print a starter campaign spec (pipe into a .json file to begin)";

fn read_spec(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Parse `--shards N` (N ≥ 1) if present.
fn shards_flag(args: &[String]) -> Result<Option<usize>, String> {
    match cli::try_flag::<usize>(args, "--shards")? {
        Some(0) => Err("--shards 0: need at least one region shard".into()),
        other => Ok(other),
    }
}

/// Switch a materialized config onto the region-sharded engine,
/// supplying the default 10 µs delay floor when the spec set none (the
/// floor is the engine's lookahead and is mandatory for sharded runs;
/// it must stay below the 20 µs slot time or the MAC's two-slot
/// timeout grace is exhausted and every handshake fails).
fn apply_shards(cfg: &mut ScenarioConfig, shards: usize) {
    cfg.execution = Some(ExecutionMode::Sharded { shards });
    if cfg.delay_floor_us.is_none() {
        cfg.delay_floor_us = Some(10.0);
    }
}

fn load_campaign(path: &str) -> Result<CampaignSpec, String> {
    let text = read_spec(path)?;
    let spec = CampaignSpec::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    spec.validate()
        .map_err(|e| format!("{path} is invalid:\n  - {}", e.problems.join("\n  - ")))?;
    Ok(spec)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE)?;
    let text = read_spec(path)?;
    let mut spec = CampaignSpec::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(d) = cli::try_flag::<f64>(args, "--duration")? {
        spec.duration_s = Some(d);
    }
    spec.validate()
        .map_err(|e| format!("{path} is invalid:\n  - {}", e.problems.join("\n  - ")))?;
    let threads = cli::try_flag(args, "--threads")?.unwrap_or(0usize);
    let timeout = cli::try_flag::<f64>(args, "--timeout")?.map(std::time::Duration::from_secs_f64);
    let out = cli::flag_value(args, "--out")
        .map(str::to_string)
        .unwrap_or_else(|| format!("CAMPAIGN_{}.json", cli::sanitize(&spec.name)));
    let fresh = args.iter().any(|a| a == "--fresh");
    let with_metrics = args.iter().any(|a| a == "--metrics");
    let shards = shards_flag(args)?;
    let resume = !fresh && std::path::Path::new(&out).exists();
    if resume {
        eprintln!("{out} exists: resuming if it is a partial artifact (--fresh recomputes)");
    }

    eprintln!(
        "campaign `{}`: {} points x {} seeds = {} runs",
        spec.name,
        spec.point_count(),
        spec.seeds.len(),
        spec.run_count()
    );
    let checkpoint_every = cli::try_flag::<f64>(args, "--checkpoint-interval")?
        .map(pcmac_engine::Duration::from_secs_f64);
    if checkpoint_every.is_some_and(|e| e.is_zero()) {
        return Err("--checkpoint-interval: need a positive number of simulated seconds".into());
    }
    let opts = RunOptions {
        threads,
        timeout,
        out: Some(out.clone().into()),
        resume,
        checkpoint_every,
        grace: None,
    };
    let outcome = run_campaign_with(&spec, opts, move |mut cfg, ctl| {
        // The metrics layer is behaviour-identical (proved by the
        // channel-equivalence suite), so flipping it on here cannot
        // change any campaign number.
        if with_metrics && cfg.metrics.is_none() {
            cfg.metrics = Some(MetricsConfig::default());
        }
        // Likewise the sharded engine is bit-identical to the
        // single-threaded reference under the same delay floor.
        if let Some(s) = shards {
            apply_shards(&mut cfg, s);
        }
        // The standard resilient run: checkpoint periodically, resume
        // from this cell's newest valid checkpoint, stop cleanly at a
        // cut when the watchdog cancels.
        ctl.run(cfg)
    })
    .map_err(|e| e.to_string())?;

    if with_metrics {
        if let Some(artifact) = MetricsArtifact::from_runs(&spec.name, &outcome.runs) {
            let path = format!("METRICS_{}.json", cli::sanitize(&spec.name));
            std::fs::write(&path, artifact.to_json()).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
    }

    println!(
        "campaign `{}` — {} runs, {:.0} s each, {:.1} s CPU total\n",
        outcome.report.campaign,
        outcome.report.runs,
        outcome.report.duration_s,
        outcome.report.wall_s
    );
    println!("{}", outcome.report.render_table());
    eprintln!("wrote {out}");

    if let Some(failures) = &outcome.report.failures {
        eprintln!("\n{} run(s) failed:", failures.len());
        for f in failures {
            eprintln!(
                "  [{:?}] {} seed {}: {}",
                f.kind,
                f.key.label(),
                f.seed.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
                f.error
            );
        }
        return Err(format!(
            "campaign `{}` finished with {} failed run(s); rerunning with the same \
             --out resumes and retries only the failed points",
            spec.name,
            failures.len()
        ));
    }
    Ok(())
}

fn cmd_expand(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE)?;
    let spec = load_campaign(path)?;
    // The grid skeleton is all `expand` needs — no scenario is
    // materialized just to print coordinates.
    let grid = spec.grid().map_err(|e| e.to_string())?;
    println!(
        "campaign `{}`: {} points x {} seeds = {} runs",
        spec.name,
        grid.point_count(),
        grid.seeds.len(),
        grid.run_count()
    );
    for cell in &grid.cells {
        println!(
            "  {:<14} load {:>6.0} kbps  {:>4} nodes  levels {:<7} knobs {:<24} seeds {:?}",
            cell.key.variant,
            cell.key.load_kbps,
            cell.key.node_count,
            cell.key
                .power_levels_mw
                .as_ref()
                .map(|l| format!("{}-level", l.len()))
                .unwrap_or_else(|| "paper".into()),
            cell.key.patches_label(),
            grid.seeds,
        );
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE)?;
    let text = read_spec(path)?;
    let spec = CampaignSpec::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    // Expanding the grid validates the campaign *and* every grid cell,
    // aggregating the defects of all of them into one list.
    spec.grid()
        .map_err(|e| format!("{path} is invalid:\n  - {}", e.problems.join("\n  - ")))?;
    println!(
        "{path}: OK ({} points x {} seeds)",
        spec.point_count(),
        spec.seeds.len()
    );
    Ok(())
}

fn cmd_scenario(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE)?;
    let text = read_spec(path)?;
    let spec = ScenarioSpec::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let seed = cli::try_flag(args, "--seed")?.unwrap_or(1u64);
    let mut cfg = spec
        .materialize(seed)
        .map_err(|e| format!("{path} is invalid:\n  - {}", e.problems.join("\n  - ")))?;
    if let Some(s) = shards_flag(args)? {
        apply_shards(&mut cfg, s);
    }
    eprintln!(
        "running `{}` ({} nodes, {} flows)",
        cfg.name,
        cfg.nodes.count(),
        cfg.flows.len()
    );
    let report = if let Some(filter) = spec.trace {
        let trace_path = format!("TRACE_{}.txt", cli::sanitize(&cfg.name));
        let mut tw = TraceWriter::with_filter(filter);
        let report = {
            let tw = std::cell::RefCell::new(&mut tw);
            Simulator::new(cfg).run_with_observer(|ev, at| tw.borrow_mut().record(ev, at))
        };
        let mut file =
            std::fs::File::create(&trace_path).map_err(|e| format!("create {trace_path}: {e}"))?;
        tw.write_to(&mut file)
            .map_err(|e| format!("write {trace_path}: {e}"))?;
        eprintln!("wrote {trace_path} ({} lines)", tw.len());
        report
    } else {
        Simulator::new(cfg).run()
    };
    println!("{}", report.summary());
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("reports serialize")
    );
    Ok(())
}

fn cmd_bisect(args: &[String]) -> Result<(), String> {
    let (a_path, b_path) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) if !a.starts_with("--") && !b.starts_with("--") => (a, b),
        _ => return Err(USAGE.to_string()),
    };
    let seed = cli::try_flag(args, "--seed")?.unwrap_or(1u64);
    let load = |path: &str| -> Result<ScenarioConfig, String> {
        let text = read_spec(path)?;
        let spec = ScenarioSpec::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        spec.materialize(seed)
            .map_err(|e| format!("{path} is invalid:\n  - {}", e.problems.join("\n  - ")))
    };
    let cfg_a = load(a_path)?;
    let cfg_b = load(b_path)?;
    let interval = match cli::try_flag::<f64>(args, "--interval")? {
        Some(s) if s > 0.0 => pcmac_engine::Duration::from_secs_f64(s),
        Some(_) => return Err("--interval: need a positive number of simulated seconds".into()),
        None => pcmac_engine::Duration::from_nanos((cfg_a.duration.as_nanos() / 32).max(1)),
    };
    eprintln!(
        "bisecting `{}` vs `{}` (seed {seed}, state fingerprints every {:.3} s)",
        cfg_a.name,
        cfg_b.name,
        interval.as_secs_f64()
    );
    let report = bisect_configs(cfg_a, cfg_b, interval);
    print!("{}", report.render());
    if report.identical {
        Ok(())
    } else {
        Err("the runs diverge (details above)".into())
    }
}

fn cmd_dashboard(args: &[String]) -> Result<(), String> {
    let dir = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or(".");
    let dir = std::path::Path::new(dir);
    let band = cli::try_flag::<f64>(args, "--band")?.unwrap_or(20.0);
    if !band.is_finite() || band <= 0.0 {
        return Err(format!("--band {band}: must be a positive percentage"));
    }
    let snap = dashboard::scan(dir).map_err(|e| format!("scan {}: {e}", dir.display()))?;
    let md = dashboard::render(&snap);
    match cli::flag_value(args, "--out").unwrap_or("DASHBOARD.md") {
        "-" => println!("{md}"),
        out => {
            let path = if std::path::Path::new(out).is_absolute() {
                std::path::PathBuf::from(out)
            } else {
                dir.join(out)
            };
            std::fs::write(&path, &md).map_err(|e| format!("write {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
        }
    }
    if let Some(baseline) = cli::flag_value(args, "--baseline") {
        let baseline = std::path::Path::new(baseline);
        let base = dashboard::scan(baseline)
            .map_err(|e| format!("scan baseline {}: {e}", baseline.display()))?;
        let regressions = dashboard::compare(&snap, &base, band);
        if !regressions.is_empty() {
            return Err(format!(
                "perf gate: {} regression(s) beyond the {band:.0}% band:\n  - {}",
                regressions.len(),
                regressions.join("\n  - ")
            ));
        }
        eprintln!(
            "perf gate: {} bench speedup(s) and {} events/sec mean(s) within the {band:.0}% band",
            base.bench_speedups.len(),
            base.events_per_sec.len()
        );
    }
    Ok(())
}

fn cmd_example() -> Result<(), String> {
    let spec = CampaignSpec {
        name: "paper-load-sweep".into(),
        base: ScenarioSpec::paper(),
        duration_s: Some(60.0),
        seeds: vec![1, 2],
        axes: Some(AxesSpec {
            loads_kbps: Some(vec![300.0, 650.0, 1000.0]),
            node_counts: None,
            variants: Some(vec![pcmac::Variant::Basic, pcmac::Variant::Pcmac]),
            power_level_sets_mw: None,
        }),
        // A generic sweep axis: any dotted path on the spec surface
        // (here the paper's 0.7 safety factor) multiplies the grid.
        sweep: Some(vec![Axis::Patch {
            path: "mac.pcmac.safety_factor".into(),
            values: vec![serde::Value::F64(0.5), serde::Value::F64(0.7)],
        }]),
    };
    println!("{}", spec.to_json());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("expand") => cmd_expand(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("scenario") => cmd_scenario(&args[1..]),
        Some("bisect") => cmd_bisect(&args[1..]),
        Some("dashboard") => cmd_dashboard(&args[1..]),
        Some("example") => cmd_example(),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
