use pcmac::{CrashWindow, FaultConfig, ScenarioConfig, Simulator, Variant};
use pcmac_engine::Duration;

#[test]
fn energy_death_after_reconvergence() {
    // Two nodes, short crash window early, tight energy budget that
    // runs out well after the window (and after post-window delivery).
    let mut cfg = ScenarioConfig::two_nodes(Variant::Pcmac, 80.0, 100_000.0, 1)
        .with_duration(Duration::from_secs(6));
    cfg.faults = Some(FaultConfig {
        crashes: Some(vec![CrashWindow {
            node: 1,
            at_s: 1.0,
            recover_s: Some(1.5),
        }]),
        energy_budget_mj: Some(3.0),
        ..FaultConfig::default()
    });
    let r = Simulator::new(cfg).run();
    let res = r.resilience.unwrap();
    println!(
        "window {:?}..{:?} reconv {:?} deaths {} residual {:?}",
        res.window_start_s,
        res.window_end_s,
        res.reconverged_after_s,
        res.energy_deaths,
        res.residual_energy_mj
    );
}
