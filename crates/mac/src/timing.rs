//! IEEE 802.11 DSSS timing.
//!
//! All interframe spaces, slot times and frame airtimes for the 2 Mbps
//! DSSS PHY that ns-2 (and therefore the paper) models: long PLCP preamble
//! and header at 1 Mbps (192 µs), control frames at the 1 Mbps basic rate,
//! data at 2 Mbps.
//!
//! `EIFS = SIFS + DIFS + airtime(ACK at basic rate)` — the defer used by
//! stations that sensed a frame they could not decode, sized so a third
//! party cannot stomp on the ACK of an exchange it could not hear properly
//! (this is the mechanism the asymmetric-link problem defeats, see paper
//! §II).

use pcmac_engine::Duration;
use serde::{Deserialize, Serialize};

use crate::frame::{ACK_BYTES, CTS_BYTES, RTS_BYTES};

/// Timing and rate parameters of the 802.11 DSSS PHY/MAC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dot11Timing {
    /// Slot time (µs 20).
    pub slot: Duration,
    /// Short interframe space (µs 10).
    pub sifs: Duration,
    /// PLCP preamble + header airtime (192 µs at 1 Mbps, long preamble).
    pub plcp: Duration,
    /// Basic rate for control frames and broadcasts (bit/s).
    pub basic_rate: u64,
    /// Data rate for unicast data frames (bit/s).
    pub data_rate: u64,
    /// Minimum contention window (slots − 1): 31.
    pub cw_min: u32,
    /// Maximum contention window: 1023.
    pub cw_max: u32,
    /// Short retry limit (RTS attempts): 7.
    pub retry_short: u8,
    /// Long retry limit (DATA attempts): 4.
    pub retry_long: u8,
}

impl Dot11Timing {
    /// The ns2.1b8a / Lucent WaveLAN parameter set used in the paper.
    pub fn ns2_default() -> Self {
        Dot11Timing {
            slot: Duration::from_micros(20),
            sifs: Duration::from_micros(10),
            plcp: Duration::from_micros(192),
            basic_rate: 1_000_000,
            data_rate: 2_000_000,
            cw_min: 31,
            cw_max: 1023,
            retry_short: 7,
            retry_long: 4,
        }
    }

    /// DIFS = SIFS + 2 × slot (50 µs with defaults).
    #[inline]
    pub fn difs(&self) -> Duration {
        self.sifs + self.slot * 2
    }

    /// EIFS = SIFS + DIFS + ACK airtime at the basic rate (364 µs with
    /// defaults).
    #[inline]
    pub fn eifs(&self) -> Duration {
        self.sifs + self.difs() + self.airtime_basic(ACK_BYTES)
    }

    /// Airtime of `bytes` at the basic rate, including PLCP overhead.
    #[inline]
    pub fn airtime_basic(&self, bytes: u32) -> Duration {
        self.plcp + Self::payload_time(bytes, self.basic_rate)
    }

    /// Airtime of `bytes` at the data rate, including PLCP overhead.
    #[inline]
    pub fn airtime_data(&self, bytes: u32) -> Duration {
        self.plcp + Self::payload_time(bytes, self.data_rate)
    }

    fn payload_time(bytes: u32, rate_bps: u64) -> Duration {
        let bits = bytes as u64 * 8;
        // ns resolution: bits * 1e9 / rate. 540-byte frames at 2 Mbps are
        // ~2.2e6 ns, far from overflow.
        Duration::from_nanos(bits * 1_000_000_000 / rate_bps)
    }

    /// RTS airtime (352 µs with defaults).
    #[inline]
    pub fn rts_time(&self) -> Duration {
        self.airtime_basic(RTS_BYTES)
    }

    /// CTS airtime (304 µs with defaults).
    #[inline]
    pub fn cts_time(&self) -> Duration {
        self.airtime_basic(CTS_BYTES)
    }

    /// ACK airtime (304 µs with defaults).
    #[inline]
    pub fn ack_time(&self) -> Duration {
        self.airtime_basic(ACK_BYTES)
    }

    /// How long the sender waits for a CTS after its RTS ends before
    /// declaring the attempt failed: SIFS + CTS airtime + 2 slots of grace
    /// (propagation and turnaround).
    #[inline]
    pub fn cts_timeout(&self) -> Duration {
        self.sifs + self.cts_time() + self.slot * 2
    }

    /// ACK wait after a DATA frame ends, sized like
    /// [`Dot11Timing::cts_timeout`].
    #[inline]
    pub fn ack_timeout(&self) -> Duration {
        self.sifs + self.ack_time() + self.slot * 2
    }

    /// On-air time of a full frame: control frames and broadcasts ride the
    /// basic rate, unicast data the data rate (ns-2's convention).
    pub fn frame_airtime(&self, frame: &crate::frame::Frame) -> Duration {
        use crate::frame::FrameKind;
        match frame.kind {
            FrameKind::Rts | FrameKind::Cts | FrameKind::Ack => {
                self.airtime_basic(frame.size_bytes())
            }
            FrameKind::Data => {
                if frame.is_broadcast() {
                    self.airtime_basic(frame.size_bytes())
                } else {
                    self.airtime_data(frame.size_bytes())
                }
            }
        }
    }
}

impl Default for Dot11Timing {
    fn default() -> Self {
        Dot11Timing::ns2_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ifs_values() {
        let t = Dot11Timing::ns2_default();
        assert_eq!(t.difs(), Duration::from_micros(50));
        // EIFS = 10 + 50 + (192 + 112) = 364 µs
        assert_eq!(t.eifs(), Duration::from_micros(364));
    }

    #[test]
    fn control_frame_airtimes() {
        let t = Dot11Timing::ns2_default();
        assert_eq!(t.rts_time(), Duration::from_micros(192 + 160));
        assert_eq!(t.cts_time(), Duration::from_micros(192 + 112));
        assert_eq!(t.ack_time(), Duration::from_micros(192 + 112));
    }

    #[test]
    fn paper_data_frame_airtime() {
        let t = Dot11Timing::ns2_default();
        // 512 B payload + 28 B UDP/IP + 28 B MAC = 568 B at 2 Mbps.
        let data = t.airtime_data(568);
        assert_eq!(data, Duration::from_micros(192 + 568 * 4));
    }

    #[test]
    fn airtime_scales_linearly_with_size() {
        let t = Dot11Timing::ns2_default();
        let a = t.airtime_data(100);
        let b = t.airtime_data(200);
        assert_eq!(
            (b - t.plcp).as_nanos(),
            2 * (a - t.plcp).as_nanos(),
            "payload time must be linear in bytes"
        );
    }

    #[test]
    fn timeouts_cover_response_airtime() {
        let t = Dot11Timing::ns2_default();
        assert!(t.cts_timeout() > t.sifs + t.cts_time());
        assert!(t.ack_timeout() > t.sifs + t.ack_time());
    }

    #[test]
    fn eifs_exceeds_ack_airtime() {
        // The whole point of EIFS: it must outlast SIFS + ACK so the
        // un-decoding bystander cannot clobber the ACK.
        let t = Dot11Timing::ns2_default();
        assert!(t.eifs() > t.sifs + t.ack_time());
    }
}
