//! The observability layer's own proof obligations.
//!
//! Two properties anchor the metrics layer:
//!
//! * **Conservation** — the drop taxonomy must account for *every*
//!   application packet exactly once (sent = delivered + Σ drop
//!   reasons + still in flight), with duplicate deliveries tracked
//!   separately so the identity also reconciles against the
//!   (duplicate-counting) sink totals in the report.
//! * **Deterministic time series** — probes are pure reads of the
//!   deterministic event stream, so a faulted run's series must show
//!   the fault window (liveness and delivery dipping, then recovering)
//!   and be bit-identical across reruns.

use pcmac::{
    ChurnConfig, CrashWindow, FaultConfig, FlowShape, FlowSpec, ImpairmentBurst, MetricsConfig,
    NodeSetup, RunReport, ScenarioConfig, Simulator, Variant,
};
use pcmac_engine::{Duration, FlowId, Milliwatts, NodeId, Point, RngStream, SimTime};

/// A lossy scenario: `n` nodes scattered (or mobile) over a square
/// field with a few cross-field flows — multihop routes, queue
/// pressure, discovery failures, the whole taxonomy.
fn lossy_scenario(variant: Variant, seed: u64, n: usize, mobile: bool) -> ScenarioConfig {
    let side = 1400.0;
    let duration = Duration::from_secs(2);
    let mut cfg = ScenarioConfig::two_nodes(variant, 100.0, 1000.0, seed);
    cfg.name = format!("obs-{seed}-{n}");
    cfg.field = (side, side);
    cfg.duration = duration;
    cfg.interference_floor = Milliwatts(1.559e-10);
    if mobile {
        cfg.nodes = NodeSetup::UniformWaypoint {
            count: n,
            speed: 20.0,
            pause: Duration::from_millis(200),
        };
    } else {
        let mut rng = RngStream::derive(seed, "obs.placement");
        cfg.nodes = NodeSetup::Static(
            (0..n)
                .map(|_| Point::new(rng.uniform(0.0, side), rng.uniform(0.0, side)))
                .collect(),
        );
    }
    let mut rng = RngStream::derive(seed, "obs.flows");
    cfg.flows = (0..4)
        .map(|i| {
            let src = rng.below(n as u64) as u32;
            let dst = loop {
                let d = rng.below(n as u64) as u32;
                if d != src {
                    break d;
                }
            };
            FlowSpec {
                flow: FlowId(i),
                src: NodeId(src),
                dst: NodeId(dst),
                bytes: 512,
                rate_bps: 40_000.0,
                start: SimTime::ZERO + Duration::from_millis(100 + 37 * i as u64),
                stop: SimTime::ZERO + duration,
                shape: FlowShape::Cbr,
            }
        })
        .collect();
    cfg.metrics = Some(MetricsConfig::default());
    cfg
}

/// Every injection mechanism inside a 2 s run (mirrors the
/// channel-equivalence fault plan).
fn fault_plan(n: usize) -> FaultConfig {
    FaultConfig {
        crashes: Some(vec![
            CrashWindow {
                node: (n as u32).saturating_sub(2),
                at_s: 0.6,
                recover_s: Some(1.4),
            },
            CrashWindow {
                node: (n as u32).saturating_sub(1),
                at_s: 1.0,
                recover_s: None,
            },
        ]),
        churn: Some(ChurnConfig {
            mean_uptime_s: 0.7,
            mean_downtime_s: 0.2,
            start_s: Some(0.2),
            stop_s: Some(1.6),
        }),
        expire_routes: Some(true),
        impairments: Some(vec![ImpairmentBurst {
            start_s: 0.9,
            stop_s: 1.3,
            extra_loss_db: 12.0,
            noise_mult: Some(2.0),
        }]),
        energy_budget_mj: Some(0.25),
    }
}

/// Assert the drop taxonomy exactly accounts for the report's packet
/// totals.
fn assert_conserved(r: &RunReport) {
    let m = r.metrics.as_ref().expect("metrics layer on");
    let d = &m.drops;
    assert!(
        d.conserved(),
        "taxonomy leak: sent {} != delivered {} + dropped {} + in flight {} ({})",
        d.sent,
        d.delivered_unique,
        d.total_dropped(),
        d.in_flight_end,
        r.name,
    );
    assert_eq!(d.sent, r.sent_packets, "fate map misses emissions");
    assert_eq!(
        d.delivered_unique + d.duplicate_deliveries,
        r.delivered_packets,
        "fate map disagrees with the (duplicate-counting) sink totals"
    );
}

/// Conservation across variants, static and mobile, healthy networks:
/// every undelivered packet lands in exactly one taxonomy bucket.
#[test]
fn drop_taxonomy_conserves_every_packet() {
    for (seed, variant) in [
        (3u64, Variant::Basic),
        (11, Variant::Scheme1),
        (19, Variant::Scheme2),
        (27, Variant::Pcmac),
    ] {
        for mobile in [false, true] {
            let r = Simulator::new(lossy_scenario(variant, seed, 14, mobile)).run();
            assert!(r.sent_packets > 0, "degenerate run is a vacuous check");
            assert_conserved(&r);
        }
    }
}

/// Conservation under the full fault plan: dead-stack emissions, churn,
/// impairments, and energy deaths all route into the taxonomy.
#[test]
fn drop_taxonomy_conserves_every_packet_under_faults() {
    for seed in [7u64, 41] {
        let mut cfg = lossy_scenario(Variant::Pcmac, seed, 14, true);
        cfg.faults = Some(fault_plan(14));
        let r = Simulator::new(cfg).run();
        assert!(r.sent_packets > 0);
        assert_conserved(&r);
        let m = r.metrics.as_ref().unwrap();
        assert!(
            m.drops.emit_dead > 0,
            "churn this dense must catch some source mid-downtime"
        );
    }
}

/// The layered counters reconcile with the layers they mirror.
#[test]
fn counters_reconcile_across_layers() {
    let r = Simulator::new(lossy_scenario(Variant::Pcmac, 5, 14, true)).run();
    let m = r.metrics.as_ref().unwrap();

    // MAC mirror: aggregated per-node counters equal the report's.
    assert_eq!(m.mac.rts_sent, r.mac.rts_sent);
    assert_eq!(m.mac.data_sent, r.mac.data_sent);
    assert_eq!(m.mac.queue_drops, r.mac.queue_drops);
    // Retransmission histogram: one entry per completed MAC exchange.
    let hist_total: u64 = m.mac.retx_histogram.iter().sum();
    assert!(hist_total > 0, "exchanges completed");

    // Routing mirror.
    assert_eq!(m.routing.rreq_originated, r.routing.rreq_originated);
    assert_eq!(m.routing.discoveries_failed, r.routing.discoveries_failed);
    assert!(
        m.routing.discoveries_started >= m.routing.discoveries_failed,
        "failures are a subset of starts"
    );

    // TX power: every data-channel transmission classified to a level.
    let by_level: u64 = m.tx_power.data_tx_by_level.iter().sum();
    assert_eq!(
        m.tx_power.data_tx_unclassified, 0,
        "all TX powers come from the configured level set"
    );
    assert!(by_level > 0);

    // PHY taxonomy: every decode outcome stems from an arrival.
    assert!(m.phy.arrivals >= m.phy.decoded_ok + m.phy.collided);

    // Energy histogram covers every node.
    let nodes: u64 = m.tx_power.energy_histogram.iter().sum();
    assert_eq!(nodes, 14);
}

/// The acceptance-criterion run: a faulted scenario's time series shows
/// liveness and delivery dipping inside the fault window and recovering
/// after it — and the whole metrics section is bit-identical across two
/// reruns.
#[test]
fn faulted_time_series_dips_and_recovers_deterministically() {
    let build = || {
        let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 80.0, 50_000.0, 9)
            .with_duration(Duration::from_secs(3));
        // Crash the source for [0.8 s, 1.8 s): emissions die on the
        // spot, delivery stalls, liveness drops to 1.
        cfg.faults = Some(FaultConfig {
            crashes: Some(vec![CrashWindow {
                node: 0,
                at_s: 0.8,
                recover_s: Some(1.8),
            }]),
            churn: None,
            expire_routes: Some(true),
            impairments: None,
            energy_budget_mj: None,
        });
        cfg.metrics = Some(MetricsConfig {
            probe_interval_s: 0.1,
        });
        cfg
    };
    let a = Simulator::new(build()).run();
    let b = Simulator::new(build()).run();

    let m = a.metrics.as_ref().expect("metrics layer on");
    assert_eq!(
        serde_json::to_string(m).unwrap(),
        serde_json::to_string(b.metrics.as_ref().unwrap()).unwrap(),
        "faulted time series must be bit-identical across reruns"
    );

    let in_window = |t: f64| (0.8..1.8).contains(&t);
    let mut dipped = false;
    let mut recovered_after = false;
    for s in &m.samples {
        if in_window(s.t_s) {
            assert_eq!(s.live_nodes, 1, "probe at {} s inside the window", s.t_s);
            dipped = true;
        } else {
            assert_eq!(s.live_nodes, 2, "probe at {} s outside the window", s.t_s);
            if s.t_s >= 1.8 {
                recovered_after = true;
            }
        }
    }
    assert!(dipped && recovered_after, "window not covered by probes");

    // Delivery progresses before the window, stalls through it, and
    // resumes after recovery.
    let at = |t: f64| {
        m.samples
            .iter()
            .rfind(|s| s.t_s <= t + 1e-9)
            .expect("probe exists")
    };
    let (pre, end, last) = (at(0.8), at(1.8), m.samples.last().unwrap());
    assert!(pre.delivered_cum > 0, "healthy phase delivers");
    assert_eq!(
        end.delivered_cum, pre.delivered_cum,
        "a dead source delivers nothing during the window"
    );
    assert!(
        last.delivered_cum > end.delivered_cum,
        "delivery resumes after recovery"
    );
    assert!(
        m.drops.emit_dead > 0,
        "in-window emissions die on the dead stack"
    );
    assert_conserved(&a);

    // Cumulative series are monotone by construction.
    for w in m.samples.windows(2) {
        assert!(w[1].sent_cum >= w[0].sent_cum);
        assert!(w[1].delivered_cum >= w[0].delivered_cum);
    }
}
