//! Load-time validation: defective specs must fail with actionable
//! messages naming the problem, not panic mid-run.

use pcmac::{FlowShape, ScenarioConfig, Variant};
use pcmac_campaign::{
    AxesSpec, CampaignSpec, NodesSpec, PlacementSpec, ScenarioSpec, TrafficPattern, TrafficSpec,
};

fn valid_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "ok".into(),
        variant: Variant::Basic,
        duration_s: 5.0,
        field: (1000.0, 1000.0),
        nodes: NodesSpec {
            count: Some(6),
            placement: PlacementSpec::Uniform,
            mobility: None,
        },
        traffic: TrafficSpec {
            pattern: TrafficPattern::RandomPairs { flows: 3 },
            bytes: 512,
            offered_load_kbps: 200.0,
            shape: FlowShape::Cbr,
        },
        power_levels_mw: None,
        shadowing: None,
    }
}

/// The spec must fail validation and the combined message must contain
/// `needle` so users can find the defect.
fn assert_problem(spec: &ScenarioSpec, needle: &str) {
    let err = spec.validate().expect_err("spec must be rejected");
    let all = err.problems.join("\n");
    assert!(
        all.contains(needle),
        "expected problem containing {needle:?}, got:\n{all}"
    );
}

#[test]
fn the_baseline_is_valid() {
    valid_spec().validate().expect("baseline valid");
    valid_spec().materialize(1).expect("and materializes");
}

#[test]
fn zero_nodes_is_rejected() {
    let mut s = valid_spec();
    s.nodes.count = Some(0);
    assert_problem(&s, "zero nodes");
}

#[test]
fn nan_and_negative_loads_are_rejected() {
    let mut s = valid_spec();
    s.traffic.offered_load_kbps = f64::NAN;
    assert_problem(&s, "offered load");
    s.traffic.offered_load_kbps = -10.0;
    assert_problem(&s, "offered load");
    s.traffic.offered_load_kbps = 0.0;
    assert_problem(&s, "offered load");
}

#[test]
fn out_of_range_flow_endpoints_are_rejected() {
    let mut s = valid_spec();
    s.traffic.pattern = TrafficPattern::Explicit {
        pairs: vec![(0, 99)],
    };
    assert_problem(&s, "out of range");
    // Self-loops too.
    s.traffic.pattern = TrafficPattern::Explicit {
        pairs: vec![(2, 2)],
    };
    assert_problem(&s, "source and destination");
}

#[test]
fn too_many_neighbour_pairs_are_rejected() {
    let mut s = valid_spec();
    s.traffic.pattern = TrafficPattern::NeighbourPairs { flows: 4 };
    assert_problem(&s, "neighbour pairs");
}

#[test]
fn bad_power_levels_are_rejected() {
    let mut s = valid_spec();
    s.power_levels_mw = Some(vec![]);
    assert_problem(&s, "empty");
    s.power_levels_mw = Some(vec![10.0, 5.0]);
    assert_problem(&s, "strictly increasing");
    s.power_levels_mw = Some(vec![-1.0, 5.0]);
    assert_problem(&s, "positive");
}

#[test]
fn bad_mobility_and_duration_are_rejected() {
    let mut s = valid_spec();
    s.duration_s = 0.0;
    assert_problem(&s, "duration");
    let mut s = valid_spec();
    s.nodes.mobility = Some(pcmac_campaign::MobilitySpec {
        speed_mps: f64::INFINITY,
        pause_s: 1.0,
    });
    assert_problem(&s, "speed");
}

#[test]
fn placements_that_overflow_the_field_are_rejected() {
    let mut s = valid_spec();
    s.nodes.placement = PlacementSpec::Ring { radius: 5000.0 };
    assert_problem(&s, "does not fit the");
    let mut s = valid_spec();
    s.nodes.count = Some(12);
    s.nodes.placement = PlacementSpec::Chain { spacing: 150.0 };
    assert_problem(&s, "exceeds the field width");
    let mut s = valid_spec();
    s.nodes.placement = PlacementSpec::Explicit {
        points: (0..6)
            .map(|i| pcmac_engine::Point::new(400.0 * i as f64, 100.0))
            .collect(),
    };
    s.nodes.count = None;
    assert_problem(&s, "outside the");
}

#[test]
fn over_shrunk_durations_are_rejected() {
    // 3 flows start staggered up to 1.274 s; a 1 s run strands them.
    let mut s = valid_spec();
    s.duration_s = 1.0;
    assert_problem(&s, "no airtime");
    // The campaign-level duration override is checked too.
    let c = CampaignSpec {
        name: "c".into(),
        base: valid_spec(),
        duration_s: Some(1.2),
        seeds: vec![1],
        axes: AxesSpec::default(),
    };
    let err = c.validate().expect_err("override too short");
    assert!(
        err.problems.iter().any(|p| p.contains("no airtime")),
        "{:?}",
        err.problems
    );
}

#[test]
fn every_problem_is_reported_at_once() {
    let mut s = valid_spec();
    s.nodes.count = Some(0);
    s.traffic.offered_load_kbps = -1.0;
    s.duration_s = f64::NAN;
    let err = s.validate().expect_err("rejected");
    assert!(
        err.problems.len() >= 3,
        "one pass must find all defects, got {:?}",
        err.problems
    );
}

#[test]
fn campaign_axis_defects_are_rejected() {
    let base = valid_spec();
    let mut c = CampaignSpec {
        name: "c".into(),
        base,
        duration_s: None,
        seeds: vec![],
        axes: AxesSpec::default(),
    };
    let err = c.validate().expect_err("no seeds");
    assert!(err.problems.iter().any(|p| p.contains("no seeds")));

    c.seeds = vec![1];
    c.axes.loads_kbps = Some(vec![]);
    let err = c.validate().expect_err("empty axis");
    assert!(err.problems.iter().any(|p| p.contains("loads_kbps")));

    c.axes.loads_kbps = Some(vec![100.0]);
    c.axes.node_counts = Some(vec![1]);
    let err = c.validate().expect_err("count < 2");
    assert!(err.problems.iter().any(|p| p.contains("at least 2")));
}

#[test]
fn scenario_config_validate_catches_raw_defects() {
    // The same guard exists one level down, for hand-built configs.
    let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 50_000.0, 1);
    cfg.flows[0].dst = pcmac_engine::NodeId(7);
    let err = cfg.validate().expect_err("out-of-range dst");
    assert!(err.problems[0].contains("out of range"), "{err}");

    let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 50_000.0, 1);
    cfg.flows[0].rate_bps = f64::NAN;
    assert!(cfg.validate().is_err(), "NaN rate");

    let cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 50_000.0, 1);
    cfg.validate().expect("stock scenario is valid");
}

#[test]
#[should_panic(expected = "out of range")]
fn simulator_construction_surfaces_the_problem_list() {
    let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 50_000.0, 1);
    cfg.flows[0].dst = pcmac_engine::NodeId(7);
    let _ = pcmac::Simulator::new(cfg);
}
