//! The mobile hot path: lazy vs eager refresh × sparse vs dense cache.
//!
//! PR 1 made the *static* channel O(local); this bench measures what PR 4
//! made O(local) for *mobile* scenarios — the two knobs it added:
//!
//! * `MobilityRefreshMode`: **eager** re-samples every waypoint model on
//!   each new timestamp (O(N) per event); **lazy** keeps per-node refresh
//!   deadlines in a min-heap and re-samples only due nodes plus the
//!   transmission's actual candidates (O(local)).
//! * `GainCacheMode`: **dense** is the N² precomputed table — unavailable
//!   under mobility, where it degrades to live evaluation (exactly the
//!   pre-PR-4 hot path); **sparse** is the block-sparse cache keyed by
//!   occupied grid-cell pairs, invalidated per node on movement, and the
//!   first cache mobile scenarios can use at all.
//!
//! Scenarios hold node density constant (one node per 250 m × 250 m,
//! 16 nodes/km², recorded as `density_per_km2`) with a **fixed** traffic
//! workload (16 single-hop nearest-neighbour CBR flows) at every N, so
//! the per-event *protocol* work is constant across rows and the timing
//! differences isolate the channel-maintenance cost — which is the point:
//! eager refresh scales with N while lazy scales with the neighbourhood,
//! so the lazy/eager margin must *grow* with N. Placements are identical
//! between the static and waypoint rows (waypoint rows move at 10 m/s
//! with 500 ms pauses).
//!
//! Results go to `BENCH_mobility.json` at the repository root. The run
//! **fails** unless, on waypoint scenarios, lazy+sparse beats eager+dense
//! at every N, by ≥ 2× at N = 4000, with the margin growing from the
//! smallest to the largest N (the PR 4 acceptance bar).
//!
//! With `PCMAC_BENCH_QUICK=1` (the CI perf-smoke step) the bench runs
//! reduced sizes, asserts lazy+sparse stays within a 10% tolerance band
//! of eager+dense (≥ 0.9×), and does **not** rewrite
//! `BENCH_mobility.json`.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use pcmac::{GainCacheMode, MobilityRefreshMode, NodeSetup, ScenarioConfig, Simulator, Variant};
use pcmac_bench::support::{
    density_per_km2, field_side, nearest_neighbour_flows, quick_mode, scatter,
};
use pcmac_engine::{Duration, Milliwatts};

/// Node counts under comparison (full mode).
const SIZES: [usize; 3] = [200, 1000, 4000];

/// Node counts in `PCMAC_BENCH_QUICK` mode.
const QUICK_SIZES: [usize; 2] = [100, 300];

/// The four (refresh, cache) corners, with their row keys.
const COMBOS: [(&str, MobilityRefreshMode, GainCacheMode); 4] = [
    (
        "eager_dense",
        MobilityRefreshMode::Eager,
        GainCacheMode::Dense,
    ),
    (
        "lazy_dense",
        MobilityRefreshMode::Lazy,
        GainCacheMode::Dense,
    ),
    (
        "eager_sparse",
        MobilityRefreshMode::Eager,
        GainCacheMode::Sparse,
    ),
    (
        "lazy_sparse",
        MobilityRefreshMode::Lazy,
        GainCacheMode::Sparse,
    ),
];

fn sizes() -> &'static [usize] {
    if quick_mode() {
        &QUICK_SIZES
    } else {
        &SIZES
    }
}

/// N nodes at constant density, fixed 16-flow single-hop workload,
/// static or random-waypoint, with the given refresh/cache knobs.
fn scenario(
    n: usize,
    mobile: bool,
    refresh: MobilityRefreshMode,
    cache: GainCacheMode,
) -> ScenarioConfig {
    let side = field_side(n);
    let duration = Duration::from_millis(500);
    let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 1000.0, 1);
    cfg.name = format!("mobility-bench-{n}");
    cfg.field = (side, side);
    cfg.duration = duration;
    // CSThresh floor: 550 m reach — local reception, the indexed regime.
    cfg.interference_floor = Milliwatts(1.559e-8);
    cfg.mobility_refresh = Some(refresh);
    cfg.gain_cache = Some(cache);
    let pts = scatter(11, "bench.mobility.placement", n, side);
    cfg.flows = nearest_neighbour_flows(
        11,
        "bench.mobility.flows",
        &pts,
        16,
        40_000.0,
        (20, 11),
        duration,
    );
    cfg.nodes = if mobile {
        NodeSetup::WaypointFrom {
            starts: pts,
            speed: 10.0,
            pause: Duration::from_millis(500),
        }
    } else {
        NodeSetup::Static(pts)
    };
    cfg
}

fn bench_mobility(c: &mut Criterion) {
    let mut g = c.benchmark_group("mobility");
    for &n in sizes() {
        // Whole runs get slow at the top size; fewer samples there.
        g.sample_size(match n {
            0..=300 => 10,
            301..=1500 => 5,
            _ => 3,
        });
        for mobile in [false, true] {
            let kind = if mobile { "waypoint" } else { "static" };
            for (key, refresh, cache) in COMBOS {
                g.bench_function(format!("{kind}/{key}/{n}"), |b| {
                    b.iter(|| {
                        let r = Simulator::new(scenario(n, mobile, refresh, cache)).run();
                        black_box(r.events)
                    });
                });
            }
        }
    }
    g.finish();
}

criterion_group!(
    name = mobility;
    config = Criterion::default();
    targets = bench_mobility
);

fn main() {
    mobility();

    let quick = quick_mode();
    let measurements = criterion::take_measurements();
    let mean = |id: &str| {
        measurements
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.mean_ns)
            .expect("benchmark ran")
    };

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    let mut waypoint_speedups: Vec<(usize, f64)> = Vec::new();
    println!(
        "\n{:>6} {:>9} {:>13} {:>13} {:>13} {:>13} {:>9}",
        "N", "mobility", "eager+dense", "lazy+dense", "eager+sparse", "lazy+sparse", "speedup"
    );
    for &n in sizes() {
        for mobile in [false, true] {
            let kind = if mobile { "waypoint" } else { "static" };
            let ns: Vec<f64> = COMBOS
                .iter()
                .map(|(key, ..)| mean(&format!("mobility/{kind}/{key}/{n}")))
                .collect();
            // Headline: the full PR 4 path vs the full pre-PR 4 path.
            let speedup = ns[0] / ns[3];
            println!(
                "{n:>6} {kind:>9} {:>11.2}ms {:>11.2}ms {:>11.2}ms {:>11.2}ms {speedup:>8.2}x",
                ns[0] / 1e6,
                ns[1] / 1e6,
                ns[2] / 1e6,
                ns[3] / 1e6
            );
            if mobile {
                waypoint_speedups.push((n, speedup));
            }
            let mut row = vec![
                ("n".into(), serde_json::Value::U64(n as u64)),
                ("mobility".into(), serde_json::Value::Str(kind.into())),
                (
                    "field_m".into(),
                    serde_json::Value::F64(field_side(n).round()),
                ),
                (
                    "density_per_km2".into(),
                    serde_json::Value::F64(density_per_km2(n)),
                ),
            ];
            for ((key, ..), v) in COMBOS.iter().zip(&ns) {
                row.push((format!("{key}_ns"), serde_json::Value::F64(*v)));
            }
            row.push((
                "speedup_lazy_sparse_vs_eager_dense".into(),
                serde_json::Value::F64(speedup),
            ));
            rows.push(serde_json::Value::Map(row));
        }
    }

    if quick {
        // Perf smoke: lazy must stay within a 10% tolerance band of
        // eager at the largest reduced size (smaller sizes run too fast
        // for a stable ratio under CI noise).
        if let Some(&(n, speedup)) = waypoint_speedups.last() {
            if speedup < 0.9 {
                failures.push(format!(
                    "perf smoke: lazy+sparse fell below 0.9x of eager+dense on waypoint \
                     N={n} (got {speedup:.2}x)"
                ));
            }
        }
        // Instrumentation tax: turning the observability layer on must
        // keep the run within the same 10% band of a metrics-off run at
        // the largest reduced size — the hot-path counters are plain
        // integer bumps behind an `Option` check, nothing more.
        let &n = sizes().last().expect("sizes non-empty");
        let time = |metrics: bool| {
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let mut cfg = scenario(n, true, MobilityRefreshMode::Lazy, GainCacheMode::Sparse);
                if metrics {
                    cfg.metrics = Some(pcmac::MetricsConfig::default());
                }
                let start = std::time::Instant::now();
                let r = Simulator::new(cfg).run();
                let elapsed = start.elapsed().as_secs_f64();
                black_box(r.events);
                best = best.min(elapsed);
            }
            best
        };
        let off = time(false);
        let on = time(true);
        println!(
            "metrics overhead at N={n}: off {:.2} ms, on {:.2} ms ({:.2}x)",
            off * 1e3,
            on * 1e3,
            on / off
        );
        if on > off * 1.10 {
            failures.push(format!(
                "perf smoke: metrics-on run exceeded 1.10x of metrics-off on waypoint \
                 N={n} (got {:.2}x)",
                on / off
            ));
        }
        println!("\nquick mode: BENCH_mobility.json left untouched");
    } else {
        // The PR 4 acceptance bar.
        for &(n, speedup) in &waypoint_speedups {
            if speedup <= 1.0 {
                failures.push(format!(
                    "lazy+sparse must beat eager+dense on waypoint scenarios at N={n} \
                     (got {speedup:.2}x)"
                ));
            }
            if n == 4000 && speedup < 2.0 {
                failures.push(format!(
                    "lazy+sparse must beat eager+dense by >= 2x at N=4000 (got {speedup:.2}x)"
                ));
            }
        }
        let (first, last) = (
            waypoint_speedups.first().expect("sizes non-empty"),
            waypoint_speedups.last().expect("sizes non-empty"),
        );
        if last.1 <= first.1 {
            failures.push(format!(
                "the lazy/eager margin must grow with N (N={} gave {:.2}x, N={} gave {:.2}x)",
                first.0, first.1, last.0, last.1
            ));
        }

        let doc = serde_json::Value::Map(vec![
            ("bench".into(), serde_json::Value::Str("mobility".into())),
            (
                "description".into(),
                serde_json::Value::Str(
                    "whole-run wall time at constant density (16 nodes/km2, floor = CSThresh, \
                     fixed 16-flow single-hop workload, waypoint 10 m/s / 500 ms pause): \
                     eager vs lazy mobility refresh x dense vs block-sparse gain cache; \
                     speedup = eager+dense / lazy+sparse"
                        .into(),
                ),
            ),
            ("results".into(), serde_json::Value::Seq(rows)),
        ]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mobility.json");
        std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n")
            .expect("write BENCH_mobility.json");
        println!("\nwrote {path}");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
