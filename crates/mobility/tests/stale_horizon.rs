//! Refresh-deadline correctness for the lazy mobility scheme.
//!
//! The simulator's lazy position refresh (core `Simulator`) leaves a
//! node's indexed position untouched until the deadline returned by
//! [`RandomWaypoint::stale_after`], relying on this contract: **queried
//! at any `t < stale_after(t0, pad)`, the node has moved less than
//! `pad` metres since `t0`**. These property tests check the contract
//! over random waypoint traces — random fields, speeds, pauses, query
//! offsets, and pad sizes — including instants straddling waypoint
//! pauses and leg changes, where the horizon logic has its branches.

use pcmac_engine::{Duration, Point, RngStream, SimTime};
use pcmac_mobility::RandomWaypoint;
use proptest::prelude::*;

fn walker(seed: u64, side: f64, speed: f64, pause_ms: u64) -> RandomWaypoint {
    let rng = RngStream::derive_sub(seed, "stale-horizon", 0);
    let start = Point::new(side * 0.37, side * 0.81);
    RandomWaypoint::new(
        start,
        side,
        side,
        speed,
        Duration::from_millis(pause_ms),
        rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sample the trace at `t0`, take the horizon, then probe a dense
    /// ladder of instants strictly before it: every probed position must
    /// lie within `pad` of the `t0` position.
    #[test]
    fn position_drifts_less_than_pad_before_the_horizon(
        seed in 0u64..10_000,
        side in 200.0f64..3000.0,
        speed in 0.5f64..40.0,
        pause_ms in 0u64..5_000,
        t0_s in 0.0f64..600.0,
        pad in 0.5f64..200.0,
    ) {
        let mut w = walker(seed, side, speed, pause_ms);
        let t0 = SimTime::from_secs_f64(t0_s);
        let p0 = w.position(t0);
        let horizon = w.stale_after(t0, pad);
        prop_assert!(horizon > t0, "horizon must lie strictly in the future");

        // Probe instants spanning [t0, horizon), non-decreasing as the
        // model requires, including the last representable nanosecond.
        let span = horizon.as_nanos() - t0.as_nanos();
        for k in 0..=32u64 {
            let off = span / 33 * k;
            let t = SimTime::from_nanos(t0.as_nanos() + off.min(span - 1));
            let p = w.position(t);
            let drift = p0.distance(p);
            prop_assert!(
                drift <= pad,
                "drift {drift} m exceeds pad {pad} m at t={t:?} (t0={t0:?}, horizon={horizon:?})"
            );
        }
    }

    /// The horizon computed *without* advancing the model first (the
    /// conservative branch) is still safe: probing from an independent
    /// clone shows sub-pad drift.
    #[test]
    fn horizon_is_safe_even_without_advancing(
        seed in 0u64..10_000,
        speed in 1.0f64..30.0,
        t0_s in 0.0f64..300.0,
        pad in 1.0f64..100.0,
    ) {
        let fresh = walker(seed, 1000.0, speed, 1500);
        let t0 = SimTime::from_secs_f64(t0_s);
        // `fresh` was never advanced to t0: stale_after must fall back to
        // the universal `now + pad/speed` bound.
        let horizon = fresh.stale_after(t0, pad);
        prop_assert!(horizon >= t0 + Duration::from_secs_f64(pad / speed * 0.99));

        let mut probe = fresh.clone();
        let p0 = probe.position(t0);
        let last = SimTime::from_nanos(horizon.as_nanos() - 1);
        let p1 = probe.position(last.max(t0));
        prop_assert!(p0.distance(p1) <= pad);
    }
}
