//! Sequence-number arithmetic.
//!
//! AODV sequence numbers are unsigned 32-bit counters compared with signed
//! rollover semantics (RFC 3561 §6.1): `a` is newer than `b` iff the
//! signed difference `a − b` is positive. This keeps comparisons correct
//! across wraparound — essential for loop freedom in long runs.

/// `true` iff sequence number `a` is strictly newer than `b`.
#[inline]
pub fn seq_newer(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) > 0
}

/// `true` iff `a` is at least as new as `b`.
#[inline]
pub fn seq_at_least(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) >= 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_ordering() {
        assert!(seq_newer(2, 1));
        assert!(!seq_newer(1, 2));
        assert!(!seq_newer(5, 5));
        assert!(seq_at_least(5, 5));
        assert!(seq_at_least(6, 5));
        assert!(!seq_at_least(4, 5));
    }

    #[test]
    fn wraparound_is_handled() {
        // u32::MAX + 1 wraps to 0: 0 is newer than u32::MAX.
        assert!(seq_newer(0, u32::MAX));
        assert!(!seq_newer(u32::MAX, 0));
        // A half-range apart is the ambiguity boundary; just under it the
        // larger number wins.
        assert!(seq_newer(1 << 30, 0));
    }

    #[test]
    fn antisymmetric() {
        for (a, b) in [(0u32, 1u32), (100, 4_000_000_000), (7, 7)] {
            assert!(!(seq_newer(a, b) && seq_newer(b, a)));
        }
    }
}
