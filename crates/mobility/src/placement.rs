//! Initial node layouts.
//!
//! The paper scatters 50 nodes uniformly over the 1000 m × 1000 m field;
//! tests and the Figure 4/6 reproductions use deterministic geometries.

use pcmac_engine::{Point, RngStream};

/// `n` points uniform over a `width × height` field.
pub fn uniform(n: usize, width: f64, height: f64, rng: &mut RngStream) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.uniform(0.0, width), rng.uniform(0.0, height)))
        .collect()
}

/// A horizontal chain starting at `origin` with `spacing` meters between
/// consecutive nodes — the classic multi-hop test topology.
pub fn chain(n: usize, origin: Point, spacing: f64) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new(origin.x + i as f64 * spacing, origin.y))
        .collect()
}

/// A `cols × rows` grid with `spacing` meters pitch, origin at `origin`.
pub fn grid(cols: usize, rows: usize, origin: Point, spacing: f64) -> Vec<Point> {
    let mut out = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        for c in 0..cols {
            out.push(Point::new(
                origin.x + c as f64 * spacing,
                origin.y + r as f64 * spacing,
            ));
        }
    }
    out
}

/// The paper's Figure 4 geometry: two communicating pairs A→B and C→D.
/// A and B sit `close` meters apart; C and D sit `far` meters apart, with
/// C placed `gap` meters beyond B on the same line, so C/D are outside
/// A/B's (shrunken) zones but close enough to jam B when transmitting at
/// the high power their own distance requires.
pub fn asymmetric_pairs(close: f64, far: f64, gap: f64) -> Vec<Point> {
    vec![
        Point::new(0.0, 0.0),               // A
        Point::new(close, 0.0),             // B
        Point::new(close + gap, 0.0),       // C
        Point::new(close + gap + far, 0.0), // D
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_field() {
        let mut rng = RngStream::derive(1, "placement");
        let pts = uniform(500, 1000.0, 800.0, &mut rng);
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|p| (0.0..1000.0).contains(&p.x)));
        assert!(pts.iter().all(|p| (0.0..800.0).contains(&p.y)));
        // Spread sanity: corners of the field are all represented.
        assert!(pts.iter().any(|p| p.x < 250.0 && p.y < 200.0));
        assert!(pts.iter().any(|p| p.x > 750.0 && p.y > 600.0));
    }

    #[test]
    fn chain_spacing_is_exact() {
        let pts = chain(5, Point::new(10.0, 20.0), 200.0);
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert_eq!(w[0].distance(w[1]), 200.0);
        }
        assert_eq!(pts[0], Point::new(10.0, 20.0));
        assert_eq!(pts[4], Point::new(810.0, 20.0));
    }

    #[test]
    fn grid_shape() {
        let pts = grid(3, 2, Point::new(0.0, 0.0), 100.0);
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], Point::new(0.0, 0.0));
        assert_eq!(pts[2], Point::new(200.0, 0.0));
        assert_eq!(pts[5], Point::new(200.0, 100.0));
    }

    #[test]
    fn asymmetric_geometry_matches_figure_4() {
        let pts = asymmetric_pairs(60.0, 200.0, 300.0);
        let (a, b, c, d) = (pts[0], pts[1], pts[2], pts[3]);
        assert_eq!(a.distance(b), 60.0, "A-B close pair");
        assert_eq!(c.distance(d), 200.0, "C-D far pair");
        assert_eq!(b.distance(c), 300.0, "C beyond B's zone");
        // The essential property: C is much farther from B than A is.
        assert!(b.distance(c) > 4.0 * a.distance(b));
    }
}
