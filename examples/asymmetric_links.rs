//! The asymmetric-link scenario of the paper's Figures 4 and 6.
//!
//! Two pairs on a line: A→B close together (so power control picks a tiny
//! level), C→D far apart (so C must shout). C sits outside the shrunken
//! sensing zone of A/B's low-power exchange: it cannot hear them, thinks
//! the channel free, and its high-power frames stomp on B's receptions.
//!
//! Basic 802.11 does not suffer (everything at max power keeps everyone
//! mutually audible); Scheme 2 suffers badly; PCMAC recovers by deferring
//! C's transmissions whenever B advertises a reception on the power
//! control channel.
//!
//! ```text
//! cargo run --release --example asymmetric_links
//! ```

use pcmac::{run_parallel, ScenarioConfig, Variant};

fn main() {
    // Saturating load on both pairs: with spatial reuse both could run
    // concurrently; without it they share (or corrupt) one channel.
    let rate = 1_000_000.0;
    println!("asymmetric-link geometry (paper Figs. 4/6):");
    println!("  A —100m— B ····300m···· C —180m— D");
    println!("  A→B needs 7.25 mW (sense range ≈220 m), C→D needs 75.8 mW;");
    println!("  the pairs are mutually invisible, but C's frames land at B");
    println!("  inside the capture ratio and corrupt A→B receptions.\n");

    let scenarios: Vec<_> = Variant::ALL
        .iter()
        .map(|v| ScenarioConfig::asymmetric_pairs(*v, rate, 7))
        .collect();
    let reports = run_parallel(scenarios, 0);

    println!(
        "{:<13} {:>10} {:>10} {:>8} {:>8} {:>9} {:>10}  {:>8} {:>8}",
        "protocol",
        "thpt kbps",
        "delay ms",
        "pdr %",
        "rxErr",
        "ctsT/O",
        "ctrlDefer",
        "A→B pdr",
        "C→D pdr"
    );
    for r in &reports {
        println!(
            "{:<13} {:>10.1} {:>10.2} {:>8.1} {:>8} {:>9} {:>10}  {:>7.1}% {:>7.1}%",
            r.protocol,
            r.throughput_kbps,
            r.mean_delay_ms,
            r.pdr() * 100.0,
            r.mac.rx_errors,
            r.mac.cts_timeouts,
            r.mac.ctrl_deferrals,
            r.flows[0].pdr() * 100.0,
            r.flows[1].pdr() * 100.0,
        );
    }

    let get = |v: &str| reports.iter().find(|r| r.protocol == v).unwrap();
    let pcmac = get("PCMAC");
    let scheme2 = get("Scheme 2");
    println!(
        "\nfairness (paper §III consequence 3): under Scheme 2 the high-power pair C→D \
         \nsuppresses the low-power pair A→B ({:.0}% vs {:.0}% PDR); PCMAC's control channel \
         \nrestores A→B to {:.0}% with {} deferrals at C.",
        scheme2.flows[1].pdr() * 100.0,
        scheme2.flows[0].pdr() * 100.0,
        pcmac.flows[0].pdr() * 100.0,
        pcmac.mac.ctrl_deferrals
    );
}
