//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Four sweeps, each on the paper's 50-node scenario at a saturating
//! offered load (default 800 kbps):
//!
//! 1. **safety factor** — the paper's 0.7 redundancy coefficient on the
//!    advertised noise tolerance, swept over {0.5, 0.7, 0.9, 1.0}.
//! 2. **control channel bandwidth** — {100, 250, 500, 1000} kbps (the
//!    paper uses 500).
//! 3. **capture policy** — ns-2's pairwise start-only model vs the
//!    stricter cumulative-SINR model, all four protocols.
//! 4. **handshake arity** — PCMAC with the three-way handshake (paper)
//!    vs keeping the ACK.
//!
//! ```text
//! cargo run -p pcmac-bench --release --bin ablations [-- --secs N] [--load L] [--seed S]
//! ```

use pcmac::{run_parallel, ScenarioConfig, Variant};
use pcmac_engine::Duration;
use pcmac_phy::CapturePolicy;
use pcmac_stats::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let grab = |flag: &str, default: f64| -> f64 {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let secs = grab("--secs", 60.0) as u64;
    let load = grab("--load", 800.0);
    let seed = grab("--seed", 1.0) as u64;
    let base = || {
        ScenarioConfig::paper(Variant::Pcmac, load, seed).with_duration(Duration::from_secs(secs))
    };

    // ------------------------------------------------------------------
    println!("== Ablation 1: PCMAC safety factor (paper: 0.7) ==");
    println!("   load {load:.0} kbps, {secs} s, seed {seed}\n");
    let factors = [0.5, 0.7, 0.9, 1.0];
    let scenarios: Vec<_> = factors
        .iter()
        .map(|&f| {
            let mut c = base();
            c.name = format!("safety-{f}");
            c.mac.pcmac.safety_factor = f;
            c
        })
        .collect();
    let reports = run_parallel(scenarios, 0);
    let mut t = Table::new(&[
        "factor",
        "thpt kbps",
        "delay ms",
        "pdr %",
        "deferrals",
        "rxErr",
    ]);
    for (f, r) in factors.iter().zip(&reports) {
        t.row(&[
            format!("{f}"),
            format!("{:.1}", r.throughput_kbps),
            format!("{:.1}", r.mean_delay_ms),
            format!("{:.1}", r.pdr() * 100.0),
            format!("{}", r.mac.ctrl_deferrals),
            format!("{}", r.mac.rx_errors),
        ]);
    }
    println!("{}", t.render());

    // ------------------------------------------------------------------
    println!("== Ablation 2: control channel bandwidth (paper: 500 kbps) ==\n");
    let rates = [100_000u64, 250_000, 500_000, 1_000_000];
    let scenarios: Vec<_> = rates
        .iter()
        .map(|&bw| {
            let mut c = base();
            c.name = format!("ctrl-{}k", bw / 1000);
            c.mac.pcmac.ctrl_rate_bps = bw;
            c
        })
        .collect();
    let reports = run_parallel(scenarios, 0);
    let mut t = Table::new(&["ctrl kbps", "thpt kbps", "delay ms", "pdr %", "broadcasts"]);
    for (bw, r) in rates.iter().zip(&reports) {
        t.row(&[
            format!("{}", bw / 1000),
            format!("{:.1}", r.throughput_kbps),
            format!("{:.1}", r.mean_delay_ms),
            format!("{:.1}", r.pdr() * 100.0),
            format!("{}", r.mac.ctrl_broadcasts),
        ]);
    }
    println!("{}", t.render());

    // ------------------------------------------------------------------
    println!("== Ablation 3: capture policy (ns-2 start-only vs cumulative SINR) ==\n");
    let mut scenarios = Vec::new();
    for policy in [CapturePolicy::StartOnly, CapturePolicy::Continuous] {
        for v in Variant::ALL {
            let mut c =
                ScenarioConfig::paper(v, load, seed).with_duration(Duration::from_secs(secs));
            c.radio.capture_policy = policy;
            c.name = format!("{policy:?}-{}", v.name());
            scenarios.push(c);
        }
    }
    let reports = run_parallel(scenarios, 0);
    let mut t = Table::new(&["policy", "protocol", "thpt kbps", "delay ms", "rxErr"]);
    for r in &reports {
        let policy = if r.name.starts_with("StartOnly") {
            "StartOnly"
        } else {
            "Continuous"
        };
        t.row(&[
            policy.to_string(),
            r.protocol.clone(),
            format!("{:.1}", r.throughput_kbps),
            format!("{:.1}", r.mean_delay_ms),
            format!("{}", r.mac.rx_errors),
        ]);
    }
    println!("{}", t.render());

    // ------------------------------------------------------------------
    println!("== Ablation 4: handshake arity (PCMAC 3-way vs keeping the ACK) ==\n");
    let mut three = base();
    three.name = "pcmac-3way".into();
    let mut four = base();
    four.name = "pcmac-4way".into();
    four.mac.pcmac.four_way_handshake = true;
    let reports = run_parallel(vec![three, four], 0);
    let mut t = Table::new(&[
        "handshake",
        "thpt kbps",
        "delay ms",
        "pdr %",
        "ackT/O",
        "implicit retx",
    ]);
    for (name, r) in ["RTS-CTS-DATA", "RTS-CTS-DATA-ACK"].iter().zip(&reports) {
        t.row(&[
            name.to_string(),
            format!("{:.1}", r.throughput_kbps),
            format!("{:.1}", r.mean_delay_ms),
            format!("{:.1}", r.pdr() * 100.0),
            format!("{}", r.mac.ack_timeouts),
            format!("{}", r.mac.implicit_retx),
        ]);
    }
    println!("{}", t.render());
}
