//! Closed propagation-model enum and the static-scenario gain cache.
//!
//! The simulator's channel fan-out sits on the hottest path of every
//! run: one gain evaluation per (transmission, candidate receiver).
//! Dispatching that through `Box<dyn Propagation>` costs an indirect
//! call per evaluation and keeps the optimizer blind. [`PropagationModel`]
//! closes the set of models the simulator actually supports — plain
//! two-ray ground, or two-ray with log-normal shadowing — so gain
//! evaluation is a direct (inlineable) match instead of a vtable jump.
//! The [`Propagation`] trait stays for generic call-sites and tests.
//!
//! [`GainCache`] goes one step further for fully static scenarios: with
//! positions frozen for the whole run, every pairwise gain is computed
//! once up front and each transmission reads a table row. The cache
//! stores the full N×N matrix (not just the upper triangle) so it is
//! also exact for the asymmetric-shadowing ablation, where
//! `G_sd ≠ G_ds` by design.

use pcmac_engine::{Milliwatts, Point};

use crate::propagation::{Propagation, TwoRayGround};
use crate::shadowing::Shadowed;

/// The shadowing amplitude bound: the deterministic Irwin–Hall(12)−6
/// draw lies in `[-6, 6]`, so a link's shadowing never exceeds
/// `6 · sigma_db` decibels above the median channel.
const SHADOW_SIGMA_SPAN: f64 = 6.0;

/// Every propagation model the simulator can run, dispatched statically.
#[derive(Debug, Clone)]
pub enum PropagationModel {
    /// ns-2's two-ray ground model.
    TwoRay(TwoRayGround),
    /// Two-ray ground with deterministic log-normal shadowing.
    Shadowed(Shadowed<TwoRayGround>),
}

impl PropagationModel {
    /// Dimensionless gain between two positions.
    #[inline]
    pub fn gain(&self, a: Point, b: Point) -> f64 {
        match self {
            PropagationModel::TwoRay(m) => m.gain(a, b),
            PropagationModel::Shadowed(m) => m.gain(a, b),
        }
    }

    /// Median-channel radius where `p_tx` drops to `threshold`.
    #[inline]
    pub fn range_for(&self, p_tx: Milliwatts, threshold: Milliwatts) -> f64 {
        match self {
            PropagationModel::TwoRay(m) => m.range_for(p_tx, threshold),
            PropagationModel::Shadowed(m) => m.range_for(p_tx, threshold),
        }
    }

    /// Minimum transmit power reaching `threshold` at distance `d`.
    #[inline]
    pub fn power_for_range(&self, d: f64, threshold: Milliwatts) -> Milliwatts {
        match self {
            PropagationModel::TwoRay(m) => m.power_for_range(d, threshold),
            PropagationModel::Shadowed(m) => m.power_for_range(d, threshold),
        }
    }

    /// Batch-evaluate the gain from `tx` to every candidate position in
    /// one pass, replacing `out`'s contents. The variant match is hoisted
    /// out of the loop, so the inner iteration is a tight run over the
    /// model's precomputed per-link terms (the two-ray crossover
    /// constants, the shadowing base) with no per-candidate dispatch.
    /// Values are bit-identical to per-pair [`PropagationModel::gain`]
    /// calls — this is purely a memory-layout/dispatch optimization.
    pub fn gains_into(&self, tx: Point, candidates: &[Point], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(candidates.len());
        match self {
            PropagationModel::TwoRay(m) => {
                out.extend(candidates.iter().map(|&p| m.gain(tx, p)));
            }
            PropagationModel::Shadowed(m) => {
                out.extend(candidates.iter().map(|&p| m.gain(tx, p)));
            }
        }
    }

    /// [`PropagationModel::gains_into`] over an index list into a shared
    /// position array — the shape the simulator's candidate sets have
    /// (sorted node ids from the spatial index). Avoids gathering the
    /// candidate positions into a temporary.
    pub fn gains_into_indexed(
        &self,
        tx: Point,
        positions: &[Point],
        idx: &[u32],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(idx.len());
        match self {
            PropagationModel::TwoRay(m) => {
                out.extend(idx.iter().map(|&j| m.gain(tx, positions[j as usize])));
            }
            PropagationModel::Shadowed(m) => {
                out.extend(idx.iter().map(|&j| m.gain(tx, positions[j as usize])));
            }
        }
    }

    /// An upper bound on the radius where `p_tx` can still arrive at or
    /// above `threshold` under **any** realisation of this model — the
    /// spatial-index culling radius. For the two-ray model this is the
    /// exact range; under shadowing the bound inflates the median range
    /// by the maximum shadowing boost (`6σ` dB), because a constructive
    /// shadow can lift a link far beyond its median reach.
    pub fn max_range_for(&self, p_tx: Milliwatts, threshold: Milliwatts) -> f64 {
        match self {
            PropagationModel::TwoRay(m) => m.range_for(p_tx, threshold),
            PropagationModel::Shadowed(m) => {
                let boost = 10f64.powf(SHADOW_SIGMA_SPAN * m.sigma_db() / 10.0);
                let effective = Milliwatts(threshold.value() / boost);
                m.range_for(p_tx, effective)
            }
        }
    }
}

impl Propagation for PropagationModel {
    fn gain(&self, a: Point, b: Point) -> f64 {
        PropagationModel::gain(self, a, b)
    }

    fn range_for(&self, p_tx: Milliwatts, threshold: Milliwatts) -> f64 {
        PropagationModel::range_for(self, p_tx, threshold)
    }

    fn power_for_range(&self, d: f64, threshold: Milliwatts) -> Milliwatts {
        PropagationModel::power_for_range(self, d, threshold)
    }
}

/// Precomputed pairwise gains for a frozen set of positions.
///
/// `gain(i, j)` returns exactly what `model.gain(pos[i], pos[j])`
/// returns — bit-for-bit, since the table is filled by calling the
/// model — so swapping the cache into the channel changes nothing about
/// a run except its speed.
#[derive(Debug, Clone)]
pub struct GainCache {
    n: usize,
    gains: Vec<f64>,
}

impl GainCache {
    /// Evaluate `model` over all ordered pairs of `positions`, one
    /// batched [`PropagationModel::gains_into`] pass per table row (the
    /// diagonal is zeroed afterwards, exactly as the per-pair fill
    /// skipped it).
    pub fn build(model: &PropagationModel, positions: &[Point]) -> Self {
        let n = positions.len();
        let mut gains = Vec::with_capacity(n * n);
        let mut row = Vec::with_capacity(n);
        for &a in positions {
            model.gains_into(a, positions, &mut row);
            gains.extend_from_slice(&row);
        }
        for i in 0..n {
            gains[i * n + i] = 0.0;
        }
        GainCache { n, gains }
    }

    /// Number of tracked positions.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when built over zero positions.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Cached gain from node `i` to node `j`.
    #[inline]
    pub fn gain(&self, i: usize, j: usize) -> f64 {
        self.gains[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(120.0, 40.0),
            Point::new(600.0, 900.0),
            Point::new(333.0, 333.0),
            Point::new(333.5, 333.5),
        ]
    }

    #[test]
    fn cache_matches_two_ray_exactly() {
        let model = PropagationModel::TwoRay(TwoRayGround::ns2_default());
        let pts = positions();
        let cache = GainCache::build(&model, &pts);
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                if i == j {
                    continue;
                }
                assert_eq!(
                    cache.gain(i, j),
                    model.gain(pts[i], pts[j]),
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn cache_matches_shadowed_exactly_even_asymmetric() {
        let model = PropagationModel::Shadowed(Shadowed::new(
            TwoRayGround::ns2_default(),
            8.0,
            false, // asymmetric: G_sd ≠ G_ds
            42,
        ));
        let pts = positions();
        let cache = GainCache::build(&model, &pts);
        let mut asymmetric_pairs = 0;
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                if i == j {
                    continue;
                }
                assert_eq!(cache.gain(i, j), model.gain(pts[i], pts[j]));
                if cache.gain(i, j) != cache.gain(j, i) {
                    asymmetric_pairs += 1;
                }
            }
        }
        assert!(
            asymmetric_pairs > 0,
            "asymmetric mode should break G_sd = G_ds"
        );
    }

    #[test]
    fn batched_gains_match_per_pair_calls_bitwise() {
        let pts = positions();
        let idx: Vec<u32> = (0..pts.len() as u32).collect();
        for model in [
            PropagationModel::TwoRay(TwoRayGround::ns2_default()),
            PropagationModel::Shadowed(Shadowed::new(TwoRayGround::ns2_default(), 6.0, false, 9)),
        ] {
            let tx = Point::new(250.0, 400.0);
            let mut batch = Vec::new();
            model.gains_into(tx, &pts, &mut batch);
            let mut indexed = Vec::new();
            model.gains_into_indexed(tx, &pts, &idx, &mut indexed);
            assert_eq!(batch.len(), pts.len());
            for (k, &p) in pts.iter().enumerate() {
                assert_eq!(batch[k].to_bits(), model.gain(tx, p).to_bits());
                assert_eq!(indexed[k].to_bits(), batch[k].to_bits());
            }
        }
    }

    #[test]
    fn static_dispatch_agrees_with_trait_dispatch() {
        let bare = TwoRayGround::ns2_default();
        let model = PropagationModel::TwoRay(bare.clone());
        let a = Point::new(10.0, 20.0);
        let b = Point::new(400.0, 80.0);
        assert_eq!(model.gain(a, b), bare.gain(a, b));
        let p = Milliwatts(281.83815);
        let th = Milliwatts(3.652e-7);
        assert_eq!(model.range_for(p, th), bare.range_for(p, th));
        assert_eq!(
            model.power_for_range(100.0, th).value(),
            bare.power_for_range(100.0, th).value()
        );
    }

    #[test]
    fn max_range_covers_any_shadow_boost() {
        let sigma = 6.0;
        let model =
            PropagationModel::Shadowed(Shadowed::new(TwoRayGround::ns2_default(), sigma, true, 7));
        let p = Milliwatts(281.83815);
        let floor = Milliwatts(1.559e-10);
        let r_max = model.max_range_for(p, floor);
        let r_median = model.range_for(p, floor);
        assert!(r_max > r_median, "shadowing must widen the culling radius");
        // Beyond r_max the strongest possible shadow still falls below
        // the floor: check on a dense distance sweep.
        for k in 0..100 {
            let d = r_max * (1.0 + k as f64 / 50.0) + 1.0;
            let boost = 10f64.powf(6.0 * sigma / 10.0);
            let best_gain = match &model {
                PropagationModel::Shadowed(m) => m.base().gain_at(d) * boost,
                _ => unreachable!(),
            };
            assert!(
                (p * best_gain.min(1.0)).value() <= floor.value() * (1.0 + 1e-9),
                "distance {d} could still beat the floor"
            );
        }
    }

    #[test]
    fn two_ray_max_range_equals_range() {
        let model = PropagationModel::TwoRay(TwoRayGround::ns2_default());
        let p = Milliwatts(75.8);
        let floor = Milliwatts(1.559e-10);
        assert_eq!(model.max_range_for(p, floor), model.range_for(p, floor));
    }
}
