//! Campaign subsystem quickstart: build a declarative campaign in code,
//! run it, and print the aggregated per-point table.
//!
//! The same campaign as JSON lives in `examples/paper_load_sweep.json`
//! and runs from the command line:
//!
//! ```text
//! cargo run --release -p pcmac-campaign --bin pcmac-campaign -- \
//!     run examples/paper_load_sweep.json
//! ```
//!
//! ```text
//! cargo run --release --example campaign
//! ```

use pcmac_sim::campaign::{run_campaign, AxesSpec, CampaignSpec, ScenarioSpec};
use pcmac_sim::Variant;

fn main() {
    // The paper's §IV scenario, swept over three loads × two variants,
    // two seeds per point, shrunk to 10 simulated seconds.
    let spec = CampaignSpec {
        name: "quickstart".into(),
        base: ScenarioSpec::paper(),
        duration_s: Some(10.0),
        seeds: vec![1, 2],
        axes: Some(AxesSpec {
            loads_kbps: Some(vec![300.0, 650.0, 1000.0]),
            node_counts: None,
            variants: Some(vec![Variant::Basic, Variant::Pcmac]),
            power_level_sets_mw: None,
        }),
        // Arbitrary extra sweep dimensions go here: `sweep` axes reach
        // every knob on the spec surface by dotted path, e.g.
        // `Axis::Patch { path: "mac.pcmac.safety_factor", values: ... }`
        // — see examples/ablation_*.json for complete ablation campaigns.
        sweep: None,
    };
    println!(
        "campaign `{}`: {} points x {} seeds = {} runs",
        spec.name,
        spec.point_count(),
        spec.seeds.len(),
        spec.run_count()
    );

    let outcome = run_campaign(&spec, 0).expect("spec is valid");
    println!("{}", outcome.report.render_table());
    println!(
        "({} runs, {:.1} s CPU total; artifact shape: CAMPAIGN_*.json)",
        outcome.report.runs, outcome.report.wall_s
    );
}
