//! Path-loss models.
//!
//! The central abstraction is the **propagation gain** `g` between two
//! positions: received power = transmitted power × `g`. Gains are symmetric
//! (the paper's assumption 2: `G_sd = G_ds`), dimensionless, and ≤ 1.
//!
//! [`TwoRayGround`] reproduces ns-2's model exactly: free-space (Friis)
//! attenuation `1/d²` out to the crossover distance `d_c = 4π·h_t·h_r/λ`,
//! then ground-reflection attenuation `1/d⁴` beyond it. With the Lucent
//! WaveLAN constants (914 MHz, 1.5 m antennas, unity gains and system loss)
//! the crossover sits at ≈ 86.2 m, and the paper's power-level → range
//! table emerges from the formula (see `levels` tests).

use pcmac_engine::{Milliwatts, Point};
use serde::{Deserialize, Serialize};

/// Speed of light (m/s).
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// A path-loss model: computes the propagation gain between two points.
pub trait Propagation {
    /// Dimensionless gain `g` such that `P_rx = g · P_tx`.
    fn gain(&self, a: Point, b: Point) -> f64;

    /// Received power at `b` for a transmission of `p_tx` from `a`.
    #[inline]
    fn received_power(&self, p_tx: Milliwatts, a: Point, b: Point) -> Milliwatts {
        p_tx * self.gain(a, b)
    }

    /// The distance at which a transmission at `p_tx` drops to `threshold`,
    /// i.e. the radius of the zone where `P_rx ≥ threshold`.
    fn range_for(&self, p_tx: Milliwatts, threshold: Milliwatts) -> f64;

    /// Minimum transmit power for which `threshold` is still received at
    /// distance `d` (inverse of [`Propagation::range_for`]).
    fn power_for_range(&self, d: f64, threshold: Milliwatts) -> Milliwatts;
}

/// ns-2's `TwoRayGround` model with a Friis near-field.
///
/// * `d ≤ d_c`:  `g = G_t·G_r·(λ / 4πd)² / L`
/// * `d > d_c`:  `g = G_t·G_r·h_t²·h_r² / d⁴·L`
///
/// where `d_c = 4π·h_t·h_r / λ` makes the two branches continuous.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoRayGround {
    /// Carrier wavelength λ (m).
    pub lambda: f64,
    /// Transmit antenna height (m).
    pub ht: f64,
    /// Receive antenna height (m).
    pub hr: f64,
    /// Antenna gains (dimensionless, product `G_t·G_r`).
    pub antenna_gain: f64,
    /// System loss L ≥ 1 (dimensionless).
    pub system_loss: f64,
    /// Cached crossover distance (m).
    crossover: f64,
    /// Cached Friis numerator `G·(λ/4π)²/L`.
    friis_c: f64,
    /// Cached two-ray numerator `G·h_t²·h_r²/L`.
    two_ray_c: f64,
}

impl TwoRayGround {
    /// Build from a carrier frequency in Hz.
    pub fn new(frequency_hz: f64, ht: f64, hr: f64, antenna_gain: f64, system_loss: f64) -> Self {
        assert!(frequency_hz > 0.0 && ht > 0.0 && hr > 0.0);
        assert!(antenna_gain > 0.0 && system_loss >= 1.0);
        let lambda = SPEED_OF_LIGHT / frequency_hz;
        let crossover = 4.0 * std::f64::consts::PI * ht * hr / lambda;
        let friis_c = antenna_gain * (lambda / (4.0 * std::f64::consts::PI)).powi(2) / system_loss;
        let two_ray_c = antenna_gain * ht * ht * hr * hr / system_loss;
        TwoRayGround {
            lambda,
            ht,
            hr,
            antenna_gain,
            system_loss,
            crossover,
            friis_c,
            two_ray_c,
        }
    }

    /// The ns-2 / Lucent WaveLAN configuration used throughout the paper:
    /// 914 MHz, 1.5 m antennas, unity gains and loss.
    pub fn ns2_default() -> Self {
        TwoRayGround::new(914e6, 1.5, 1.5, 1.0, 1.0)
    }

    /// Crossover distance `d_c` between the Friis and ground-reflection
    /// regimes (m).
    #[inline]
    pub fn crossover(&self) -> f64 {
        self.crossover
    }

    /// Gain as a function of distance alone.
    #[inline]
    pub fn gain_at(&self, d: f64) -> f64 {
        if d <= 0.0 {
            // Co-located nodes: cap the gain at 1 (no amplification).
            return 1.0;
        }
        let g = if d <= self.crossover {
            self.friis_c / (d * d)
        } else {
            self.two_ray_c / (d * d * d * d)
        };
        g.min(1.0)
    }
}

impl Propagation for TwoRayGround {
    #[inline]
    fn gain(&self, a: Point, b: Point) -> f64 {
        self.gain_at(a.distance(b))
    }

    fn range_for(&self, p_tx: Milliwatts, threshold: Milliwatts) -> f64 {
        assert!(threshold.value() > 0.0, "threshold must be positive");
        if p_tx.value() <= 0.0 {
            return 0.0;
        }
        let ratio = p_tx.value() / threshold.value();
        let d_friis = (self.friis_c * ratio).sqrt();
        if d_friis <= self.crossover {
            d_friis
        } else {
            (self.two_ray_c * ratio).powf(0.25)
        }
    }

    fn power_for_range(&self, d: f64, threshold: Milliwatts) -> Milliwatts {
        let g = self.gain_at(d);
        if g <= 0.0 {
            return Milliwatts(f64::INFINITY);
        }
        Milliwatts(threshold.value() / g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TwoRayGround {
        TwoRayGround::ns2_default()
    }

    /// The maximum power used by the paper / ns-2's Lucent WaveLAN default.
    const P_MAX: Milliwatts = Milliwatts(281.83815);

    /// ns-2's decode threshold (3.652e-10 W) in mW.
    const RX_THRESH: Milliwatts = Milliwatts(3.652e-7);

    /// ns-2's carrier-sense threshold (1.559e-11 W) in mW.
    const CS_THRESH: Milliwatts = Milliwatts(1.559e-8);

    #[test]
    fn crossover_is_about_86m() {
        let c = model().crossover();
        assert!(
            (86.0..86.5).contains(&c),
            "crossover {c} outside expected window"
        );
    }

    #[test]
    fn branches_are_continuous_at_crossover() {
        let m = model();
        let c = m.crossover();
        let below = m.gain_at(c - 1e-9);
        let above = m.gain_at(c + 1e-9);
        assert!((below - above).abs() / below < 1e-6);
    }

    #[test]
    fn decode_range_at_max_power_is_250m() {
        let d = model().range_for(P_MAX, RX_THRESH);
        assert!((d - 250.0).abs() < 0.5, "decode range {d} != 250 m");
    }

    #[test]
    fn sense_range_at_max_power_is_550m() {
        let d = model().range_for(P_MAX, CS_THRESH);
        assert!((d - 550.0).abs() < 1.0, "sense range {d} != 550 m");
    }

    #[test]
    fn received_power_matches_ns2_thresholds() {
        let m = model();
        let a = Point::new(0.0, 0.0);
        // At exactly 250 m the received power equals RXThresh.
        let pr = m.received_power(P_MAX, a, Point::new(250.0, 0.0));
        assert!((pr.value() - RX_THRESH.value()).abs() / RX_THRESH.value() < 5e-3);
        // At 550 m it equals CSThresh.
        let ps = m.received_power(P_MAX, a, Point::new(550.0, 0.0));
        assert!((ps.value() - CS_THRESH.value()).abs() / CS_THRESH.value() < 5e-3);
    }

    #[test]
    fn gain_is_monotone_decreasing() {
        let m = model();
        let mut last = f64::INFINITY;
        for d in 1..700 {
            let g = m.gain_at(d as f64);
            assert!(g <= last, "gain increased at d={d}");
            last = g;
        }
    }

    #[test]
    fn gain_is_symmetric() {
        let m = model();
        let a = Point::new(12.0, 70.0);
        let b = Point::new(300.0, 5.0);
        assert_eq!(m.gain(a, b), m.gain(b, a));
    }

    #[test]
    fn colocated_gain_capped_at_one() {
        let m = model();
        let p = Point::new(1.0, 1.0);
        assert_eq!(m.gain(p, p), 1.0);
        // Very short distances must not amplify either.
        assert!(m.gain_at(0.01) <= 1.0);
    }

    #[test]
    fn power_for_range_inverts_range_for() {
        let m = model();
        for d in [30.0, 86.0, 90.0, 150.0, 250.0, 400.0] {
            let p = m.power_for_range(d, RX_THRESH);
            let back = m.range_for(p, RX_THRESH);
            assert!((back - d).abs() < 1e-6, "d={d} back={back}");
        }
    }

    #[test]
    fn friis_regime_is_inverse_square() {
        let m = model();
        // Both distances below crossover: doubling distance quarters gain.
        let g20 = m.gain_at(20.0);
        let g40 = m.gain_at(40.0);
        assert!((g20 / g40 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn two_ray_regime_is_inverse_fourth() {
        let m = model();
        let g100 = m.gain_at(100.0);
        let g200 = m.gain_at(200.0);
        assert!((g100 / g200 - 16.0).abs() < 1e-9);
    }
}
