//! ns-2-style event traces.
//!
//! ns-2 users debug wireless MACs by reading trace files; this module
//! provides the same affordance: feed [`TraceWriter`] to
//! [`crate::Simulator::run_with_observer`] and get one line per
//! channel-level event, e.g.
//!
//! ```text
//! 1.003017920 r  _2_ RTS  0->2 len 20 pwr 2.818e2
//! 1.003401920 s  _2_ CTS  2->0 len 14
//! ```
//!
//! Format: `time  kind  _node_  frame  src->dst  len bytes [pwr mW]`,
//! where kind is `s` (start of a transmission arriving — the receiver's
//! perspective), `e` (arrival end), `t` (transmit end), `c` (control
//! channel), `m`/`a`/`g` (MAC timer, AODV timer, traffic generation).
//! The filter keeps traces readable: by default only channel events are
//! written.

use std::fmt::Write as _;
use std::io;

use crate::event::SimEvent;
use pcmac_engine::SimTime;
use pcmac_mac::FrameKind;
use serde::{Deserialize, Serialize};

/// What to include in the trace. Serde-round-trippable so scenario
/// specs can carry a trace request declaratively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceFilter {
    /// Data-channel arrivals and transmit ends.
    pub channel: bool,
    /// Power-control channel events.
    pub ctrl: bool,
    /// MAC and routing timers (very chatty).
    pub timers: bool,
    /// Traffic emissions.
    pub traffic: bool,
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter {
            channel: true,
            ctrl: true,
            timers: false,
            traffic: true,
        }
    }
}

/// Accumulates trace lines in memory; write to disk or stdout afterwards
/// (the simulation is fast; I/O during the run would dominate).
#[derive(Debug, Default)]
pub struct TraceWriter {
    filter: TraceFilter,
    lines: String,
    count: u64,
}

impl TraceWriter {
    /// A writer with the default filter (channel + ctrl + traffic).
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer with a custom filter.
    pub fn with_filter(filter: TraceFilter) -> Self {
        TraceWriter {
            filter,
            ..Default::default()
        }
    }

    /// Record one event (pass this method to `run_with_observer`).
    pub fn record(&mut self, ev: &SimEvent, at: SimTime) {
        let f = &self.filter;
        let t = at.as_secs_f64();
        match ev {
            SimEvent::ArrivalStart {
                node, power, frame, ..
            } if f.channel => {
                let _ = writeln!(
                    self.lines,
                    "{t:.9} s _{node}_ {} {}->{} len {} pwr {:.3e}",
                    kind_str(frame.kind),
                    frame.tx,
                    frame.rx,
                    frame.size_bytes(),
                    power.value(),
                );
                self.count += 1;
            }
            SimEvent::ArrivalEnd { node, key } if f.channel => {
                let _ = writeln!(self.lines, "{t:.9} e _{node}_ key {key}");
                self.count += 1;
            }
            SimEvent::TxEnd { node } if f.channel => {
                let _ = writeln!(self.lines, "{t:.9} t _{node}_");
                self.count += 1;
            }
            SimEvent::CtrlArrivalStart { node, frame, .. } if f.ctrl => {
                let _ = writeln!(
                    self.lines,
                    "{t:.9} c _{node}_ TOL rx {} tol {:.3e} rem {}",
                    frame.receiver,
                    frame.noise_tolerance.value(),
                    frame.remaining,
                );
                self.count += 1;
            }
            SimEvent::MacTimer { node, kind, .. } if f.timers => {
                let _ = writeln!(self.lines, "{t:.9} m _{node}_ {kind:?}");
                self.count += 1;
            }
            SimEvent::AodvTimer { node, dst, .. } if f.timers => {
                let _ = writeln!(self.lines, "{t:.9} a _{node}_ disc {dst}");
                self.count += 1;
            }
            SimEvent::TrafficEmit { node, source } if f.traffic => {
                let _ = writeln!(self.lines, "{t:.9} g _{node}_ src {source}");
                self.count += 1;
            }
            _ => {}
        }
    }

    /// The trace text.
    pub fn text(&self) -> &str {
        &self.lines
    }

    /// Number of recorded lines.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Dump the accumulated trace into any sink (file, stdout, buffer)
    /// in one write, after the run — I/O never touches the hot loop.
    pub fn write_to(&self, w: &mut impl io::Write) -> io::Result<()> {
        w.write_all(self.lines.as_bytes())
    }
}

fn kind_str(k: FrameKind) -> &'static str {
    match k {
        FrameKind::Rts => "RTS",
        FrameKind::Cts => "CTS",
        FrameKind::Data => "DATA",
        FrameKind::Ack => "ACK",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScenarioConfig, Simulator, Variant};
    use pcmac_engine::Duration;

    #[test]
    fn trace_captures_the_handshake() {
        let cfg = ScenarioConfig::two_nodes(Variant::Basic, 80.0, 50_000.0, 1)
            .with_duration(Duration::from_secs(1));
        let mut tw = TraceWriter::new();
        let report = {
            let tw = std::cell::RefCell::new(&mut tw);
            Simulator::new(cfg).run_with_observer(|ev, at| tw.borrow_mut().record(ev, at))
        };
        assert!(report.delivered_packets > 0);
        let text = tw.text();
        assert!(text.contains(" RTS "), "trace has RTS lines");
        assert!(text.contains(" CTS "), "trace has CTS lines");
        assert!(text.contains(" DATA "), "trace has DATA lines");
        assert!(text.contains(" ACK "), "trace has ACK lines");
        // Timestamps at the front, strictly formatted.
        let first = text.lines().next().unwrap();
        assert!(first.split_whitespace().next().unwrap().contains('.'));
    }

    #[test]
    fn pcmac_trace_includes_tolerance_broadcasts() {
        let cfg = ScenarioConfig::two_nodes(Variant::Pcmac, 80.0, 50_000.0, 1)
            .with_duration(Duration::from_secs(1));
        let mut tw = TraceWriter::new();
        {
            let tw = std::cell::RefCell::new(&mut tw);
            Simulator::new(cfg).run_with_observer(|ev, at| tw.borrow_mut().record(ev, at));
        }
        assert!(tw.text().contains(" TOL "), "control channel traced");
    }

    #[test]
    fn filter_suppresses_categories() {
        let cfg = ScenarioConfig::two_nodes(Variant::Basic, 80.0, 50_000.0, 1)
            .with_duration(Duration::from_secs(1));
        let mut tw = TraceWriter::with_filter(TraceFilter {
            channel: false,
            ctrl: false,
            timers: false,
            traffic: true,
        });
        {
            let tw = std::cell::RefCell::new(&mut tw);
            Simulator::new(cfg).run_with_observer(|ev, at| tw.borrow_mut().record(ev, at));
        }
        assert!(!tw.is_empty(), "traffic lines remain");
        assert!(!tw.text().contains(" RTS "), "channel suppressed");
    }

    #[test]
    fn filter_round_trips_through_json() {
        let f = TraceFilter {
            channel: false,
            ctrl: true,
            timers: true,
            traffic: false,
        };
        let json = serde_json::to_string(&f).unwrap();
        let back: TraceFilter = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn write_to_dumps_the_accumulated_text() {
        let cfg = ScenarioConfig::two_nodes(Variant::Basic, 80.0, 50_000.0, 1)
            .with_duration(Duration::from_secs(1));
        let mut tw = TraceWriter::new();
        {
            let tw = std::cell::RefCell::new(&mut tw);
            Simulator::new(cfg).run_with_observer(|ev, at| tw.borrow_mut().record(ev, at));
        }
        let mut sink = Vec::new();
        tw.write_to(&mut sink).unwrap();
        assert_eq!(sink, tw.text().as_bytes());
    }
}
