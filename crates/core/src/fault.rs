//! Deterministic fault injection.
//!
//! A [`FaultConfig`] layers failures on top of an otherwise healthy
//! scenario: scheduled node crashes, seeded crash/recover churn,
//! transient channel impairment bursts, and per-node energy budgets.
//! Everything is derived from the master seed and the static schedule,
//! so the same seed plus the same fault plan produces bit-identical
//! reports regardless of channel-index, mobility-refresh, or gain-cache
//! mode — the fault layer never touches the spatial data structures.
//!
//! All fields are optional so scenario JSON predating the fault layer
//! parses unchanged.

use serde::{Deserialize, Serialize};

/// One scheduled crash: the node goes dark at `at_s`, and (optionally)
/// comes back at `recover_s`. While down a node neither transmits nor
/// receives nor forwards; its timers keep running so recovery is clean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashWindow {
    /// Which node crashes.
    pub node: u32,
    /// Crash instant (seconds from scenario start).
    pub at_s: f64,
    /// Recovery instant; `None` means the node stays down for the rest
    /// of the run.
    pub recover_s: Option<f64>,
}

/// Stochastic crash/recover churn: every node alternates exponentially
/// distributed up and down phases, drawn from a per-node substream of
/// the master seed (`faults.churn`, node index).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Mean length of an up phase (seconds).
    pub mean_uptime_s: f64,
    /// Mean length of a down phase (seconds).
    pub mean_downtime_s: f64,
    /// Churn window start (`None` = scenario start).
    pub start_s: Option<f64>,
    /// Churn window end (`None` = scenario end). Nodes still down when
    /// the window closes recover at the window edge, so the "after"
    /// phase observes a healed network.
    pub stop_s: Option<f64>,
}

/// A transient channel impairment: between `start_s` and `stop_s` every
/// link loses `extra_loss_db` of received power, and (optionally) every
/// radio's noise floor is raised by `noise_mult`. Overlapping bursts
/// compose multiplicatively.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpairmentBurst {
    /// Burst start (seconds from scenario start).
    pub start_s: f64,
    /// Burst end (seconds).
    pub stop_s: f64,
    /// Extra path loss applied to every link (dB, ≥ 0).
    pub extra_loss_db: f64,
    /// Noise-floor multiplier while active (`None` = 1, unchanged).
    pub noise_mult: Option<f64>,
}

/// The complete fault plan for one scenario. Every field is optional;
/// an all-`None` plan injects nothing (but still produces a resilience
/// report, making "faults off" a valid campaign axis value).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Explicitly scheduled crash windows.
    pub crashes: Option<Vec<CrashWindow>>,
    /// Seeded stochastic churn over all nodes.
    pub churn: Option<ChurnConfig>,
    /// `Some(true)` wipes a node's AODV routing state on recovery
    /// (counters survive); default/`Some(false)` lets routes survive
    /// the outage and age out on their own.
    pub expire_routes: Option<bool>,
    /// Transient channel impairment bursts.
    pub impairments: Option<Vec<ImpairmentBurst>>,
    /// Per-node energy budget (mJ of radiated data-channel energy).
    /// A node that exhausts its budget goes down permanently at the end
    /// of the transmission that crossed the line.
    pub energy_budget_mj: Option<f64>,
}

impl FaultConfig {
    /// `true` when the plan can actually take a node down or impair the
    /// channel.
    pub fn is_active(&self) -> bool {
        self.crashes.as_ref().is_some_and(|c| !c.is_empty())
            || self.churn.is_some()
            || self.impairments.as_ref().is_some_and(|i| !i.is_empty())
            || self.energy_budget_mj.is_some()
    }

    /// Append every defect in the plan to `problems` (shared by the
    /// scenario validator and the declarative spec validator).
    /// `node_count` bounds crash targets; `duration_s` bounds windows.
    pub fn collect_problems(&self, node_count: usize, duration_s: f64, problems: &mut Vec<String>) {
        if let Some(crashes) = &self.crashes {
            for (i, cw) in crashes.iter().enumerate() {
                if (cw.node as usize) >= node_count {
                    problems.push(format!(
                        "fault crash {i}: node {} out of range (scenario has {node_count} nodes)",
                        cw.node
                    ));
                }
                if !cw.at_s.is_finite() || cw.at_s < 0.0 {
                    problems.push(format!(
                        "fault crash {i}: crash time {} s must be finite and non-negative",
                        cw.at_s
                    ));
                }
                if let Some(r) = cw.recover_s {
                    if !r.is_finite() || r <= cw.at_s {
                        problems.push(format!(
                            "fault crash {i}: recovery time {r} s must be finite and after the crash at {} s",
                            cw.at_s
                        ));
                    }
                }
            }
        }
        if let Some(ch) = &self.churn {
            for (which, mean) in [
                ("uptime", ch.mean_uptime_s),
                ("downtime", ch.mean_downtime_s),
            ] {
                if !mean.is_finite() || mean <= 0.0 {
                    problems.push(format!(
                        "fault churn: mean {which} {mean} s must be positive and finite"
                    ));
                }
            }
            if let Some(s) = ch.start_s {
                if !s.is_finite() || s < 0.0 {
                    problems.push(format!(
                        "fault churn: start {s} s must be finite and non-negative"
                    ));
                }
            }
            if let Some(e) = ch.stop_s {
                if !e.is_finite() || e <= ch.start_s.unwrap_or(0.0) {
                    problems.push(format!(
                        "fault churn: stop {e} s must be finite and after start {} s",
                        ch.start_s.unwrap_or(0.0)
                    ));
                }
            }
            if ch.start_s.unwrap_or(0.0) >= duration_s {
                problems.push(format!(
                    "fault churn: window starts at {} s, at or beyond the {duration_s} s run",
                    ch.start_s.unwrap_or(0.0)
                ));
            }
        }
        if let Some(bursts) = &self.impairments {
            for (i, b) in bursts.iter().enumerate() {
                if !b.start_s.is_finite() || b.start_s < 0.0 {
                    problems.push(format!(
                        "fault impairment {i}: start {} s must be finite and non-negative",
                        b.start_s
                    ));
                }
                if !b.stop_s.is_finite() || b.stop_s <= b.start_s {
                    problems.push(format!(
                        "fault impairment {i}: stop {} s must be finite and after start {} s",
                        b.stop_s, b.start_s
                    ));
                }
                if !b.extra_loss_db.is_finite() || b.extra_loss_db < 0.0 {
                    problems.push(format!(
                        "fault impairment {i}: extra loss {} dB must be finite and non-negative",
                        b.extra_loss_db
                    ));
                }
                if let Some(m) = b.noise_mult {
                    if !m.is_finite() || m < 1.0 {
                        problems.push(format!(
                            "fault impairment {i}: noise multiplier {m} must be finite and at least 1"
                        ));
                    }
                }
            }
        }
        if let Some(b) = self.energy_budget_mj {
            if !b.is_finite() || b <= 0.0 {
                problems.push(format!(
                    "fault energy budget {b} mJ must be positive and finite"
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_plan() -> FaultConfig {
        FaultConfig {
            crashes: Some(vec![
                CrashWindow {
                    node: 3,
                    at_s: 2.0,
                    recover_s: Some(4.0),
                },
                CrashWindow {
                    node: 1,
                    at_s: 5.0,
                    recover_s: None,
                },
            ]),
            churn: Some(ChurnConfig {
                mean_uptime_s: 12.0,
                mean_downtime_s: 3.0,
                start_s: Some(1.0),
                stop_s: Some(9.0),
            }),
            expire_routes: Some(true),
            impairments: Some(vec![ImpairmentBurst {
                start_s: 2.5,
                stop_s: 3.5,
                extra_loss_db: 6.0,
                noise_mult: Some(4.0),
            }]),
            energy_budget_mj: Some(250.0),
        }
    }

    #[test]
    fn serde_round_trip_preserves_plan() {
        let plan = full_plan();
        let json = serde_json::to_string_pretty(&plan).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        // An all-None plan survives too (and is what a missing key parses as).
        let empty = FaultConfig::default();
        let back: FaultConfig =
            serde_json::from_str(&serde_json::to_string(&empty).unwrap()).unwrap();
        assert_eq!(empty, back);
        assert!(!empty.is_active());
        assert!(plan.is_active());
    }

    #[test]
    fn validation_collects_every_defect() {
        let plan = FaultConfig {
            crashes: Some(vec![CrashWindow {
                node: 99,
                at_s: -1.0,
                recover_s: Some(-2.0),
            }]),
            churn: Some(ChurnConfig {
                mean_uptime_s: 0.0,
                mean_downtime_s: f64::NAN,
                start_s: Some(50.0),
                stop_s: Some(1.0),
            }),
            expire_routes: None,
            impairments: Some(vec![ImpairmentBurst {
                start_s: 5.0,
                stop_s: 4.0,
                extra_loss_db: -3.0,
                noise_mult: Some(0.5),
            }]),
            energy_budget_mj: Some(0.0),
        };
        let mut problems = Vec::new();
        plan.collect_problems(10, 10.0, &mut problems);
        for needle in [
            "out of range",
            "crash time",
            "recovery time",
            "mean uptime",
            "mean downtime",
            "after start",
            "extra loss",
            "noise multiplier",
            "energy budget",
            "beyond the",
        ] {
            assert!(
                problems.iter().any(|p| p.contains(needle)),
                "expected a problem containing {needle:?}, got {problems:?}"
            );
        }
        let mut clean = Vec::new();
        full_plan().collect_problems(10, 10.0, &mut clean);
        assert!(clean.is_empty(), "valid plan rejected: {clean:?}");
    }
}
