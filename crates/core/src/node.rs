//! Per-node component assembly.

use std::sync::Arc;

use pcmac_aodv::{AodvAgent, AodvConfig};
use pcmac_engine::{NodeId, RngStream, SimTime};
use pcmac_mac::{CtrlFrame, DcfMac, Frame, MacConfig};
use pcmac_phy::energy::EnergyModel;
use pcmac_phy::radio::RadioConfig;
use pcmac_phy::{EnergyMeter, Radio};
use pcmac_traffic::{CbrSource, OnOffSource, PoissonSource, Sink, Source};

use crate::config::{FlowShape, FlowSpec};

/// A traffic source of any supported shape.
#[derive(Debug)]
pub enum TrafficSource {
    /// Constant bit rate.
    Cbr(CbrSource),
    /// Poisson arrivals.
    Poisson(PoissonSource),
    /// Bursty on/off.
    OnOff(OnOffSource),
}

impl TrafficSource {
    /// Build from a flow specification.
    pub fn from_spec(spec: &FlowSpec, seed: u64) -> Self {
        match spec.shape {
            FlowShape::Cbr => TrafficSource::Cbr(CbrSource::new(
                spec.flow,
                spec.src,
                spec.dst,
                spec.bytes,
                spec.rate_bps,
                spec.start,
                spec.stop,
            )),
            FlowShape::Poisson => TrafficSource::Poisson(PoissonSource::new(
                spec.flow,
                spec.src,
                spec.dst,
                spec.bytes,
                spec.rate_bps,
                spec.start,
                spec.stop,
                RngStream::derive_sub(seed, "traffic.poisson", spec.flow.0 as u64),
            )),
            FlowShape::OnOff {
                mean_on_s,
                mean_off_s,
            } => TrafficSource::OnOff(OnOffSource::new(
                spec.flow,
                spec.src,
                spec.dst,
                spec.bytes,
                spec.rate_bps,
                mean_on_s,
                mean_off_s,
                spec.start,
                spec.stop,
                RngStream::derive_sub(seed, "traffic.onoff", spec.flow.0 as u64),
            )),
        }
    }

    /// Next emission instant (`None` when the flow finished).
    pub fn next_time(&mut self) -> Option<SimTime> {
        match self {
            TrafficSource::Cbr(s) => s.next_time(),
            TrafficSource::Poisson(s) => s.next_time(),
            TrafficSource::OnOff(s) => s.next_time(),
        }
    }

    /// Emit the packet due at `now`.
    pub fn emit(&mut self, now: SimTime) -> pcmac_net::Packet {
        match self {
            TrafficSource::Cbr(s) => s.emit(now),
            TrafficSource::Poisson(s) => s.emit(now),
            TrafficSource::OnOff(s) => s.emit(now),
        }
    }

    /// Packets emitted so far.
    pub fn emitted(&self) -> u64 {
        match self {
            TrafficSource::Cbr(s) => s.emitted(),
            TrafficSource::Poisson(s) => s.emitted(),
            TrafficSource::OnOff(s) => s.emitted(),
        }
    }

    /// The flow this source feeds.
    pub fn flow(&self) -> pcmac_engine::FlowId {
        match self {
            TrafficSource::Cbr(s) => s.flow(),
            TrafficSource::Poisson(s) => s.flow(),
            TrafficSource::OnOff(s) => s.flow(),
        }
    }
}

/// One station: radios, MAC, routing, traffic endpoints, meter.
/// Movement and the other dispatch-hot per-node scalars live in the
/// simulator's struct-of-arrays state, not here — `Node` is the *cold*
/// half (protocol machines, tables, counters) that a region shard only
/// materialises for nodes it owns.
#[derive(Debug)]
pub struct Node {
    /// Station address.
    pub id: NodeId,
    /// Data-channel radio.
    pub radio: Radio<Arc<Frame>>,
    /// Power-control-channel radio (only exercised under PCMAC).
    pub ctrl_radio: Radio<CtrlFrame>,
    /// The MAC.
    pub mac: DcfMac,
    /// The routing agent.
    pub aodv: AodvAgent,
    /// Traffic sources homed on this node.
    pub sources: Vec<TrafficSource>,
    /// Delivery statistics for flows terminating here.
    pub sink: Sink,
    /// Energy bookkeeping.
    pub energy: EnergyMeter,
}

impl Node {
    /// Assemble a node.
    pub fn new(
        id: NodeId,
        radio_cfg: RadioConfig,
        mac_cfg: MacConfig,
        aodv_cfg: AodvConfig,
        seed: u64,
    ) -> Self {
        Node {
            id,
            radio: Radio::new(radio_cfg.clone()),
            ctrl_radio: Radio::new(radio_cfg),
            mac: DcfMac::new(id, mac_cfg, seed),
            aodv: AodvAgent::new(id, aodv_cfg),
            sources: Vec::new(),
            sink: Sink::new(),
            energy: EnergyMeter::new(EnergyModel::radiated_only(), SimTime::ZERO),
        }
    }

    /// Serialize the complete per-node state (radios, MAC, routing,
    /// sources, sink, meter) into `w`. The node id is implied by the
    /// node's index in the scenario and is not written.
    pub(crate) fn save_state(&self, w: &mut pcmac_snap::SnapWriter) {
        use pcmac_snap::Snap;
        self.radio.save(w);
        self.ctrl_radio.save(w);
        self.mac.save_state(w);
        self.aodv.save_state(w);
        self.sources.save(w);
        self.sink.save(w);
        self.energy.save(w);
    }

    /// Overwrite this node's state from a blob written by
    /// [`Node::save_state`]. The node must have been built from the same
    /// scenario configuration.
    pub(crate) fn load_state(
        &mut self,
        r: &mut pcmac_snap::SnapReader<'_>,
    ) -> Result<(), pcmac_snap::SnapError> {
        use pcmac_snap::Snap;
        self.radio = Snap::load(r)?;
        self.ctrl_radio = Snap::load(r)?;
        self.mac.load_state(r)?;
        self.aodv.load_state(r)?;
        self.sources = Snap::load(r)?;
        self.sink = Snap::load(r)?;
        self.energy = Snap::load(r)?;
        Ok(())
    }
}

mod snap {
    use super::TrafficSource;
    use pcmac_snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for TrafficSource {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                TrafficSource::Cbr(s) => {
                    w.u8(0);
                    s.save(w);
                }
                TrafficSource::Poisson(s) => {
                    w.u8(1);
                    s.save(w);
                }
                TrafficSource::OnOff(s) => {
                    w.u8(2);
                    s.save(w);
                }
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(TrafficSource::Cbr(Snap::load(r)?)),
                1 => Ok(TrafficSource::Poisson(Snap::load(r)?)),
                2 => Ok(TrafficSource::OnOff(Snap::load(r)?)),
                _ => Err(SnapError::Corrupt("traffic source tag")),
            }
        }
    }
}
