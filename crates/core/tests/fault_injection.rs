//! Behavior of the deterministic fault layer: crashes silence nodes,
//! recoveries heal them, impairments attenuate the channel, energy
//! budgets are permanent — and the resilience section accounts for all
//! of it consistently.

use pcmac::{
    ChurnConfig, CrashWindow, FaultConfig, FlowShape, FlowSpec, ImpairmentBurst, NodeSetup,
    RunReport, ScenarioConfig, Simulator, Variant,
};
use pcmac_engine::{Duration, FlowId, Milliwatts, NodeId, Point, SimTime};

/// Serialized report minus the wall clock — bit-identity comparison.
fn fingerprint(r: &RunReport) -> serde_json::Value {
    let text = serde_json::to_string(r).expect("reports serialize");
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    match v {
        serde_json::Value::Map(entries) => {
            serde_json::Value::Map(entries.into_iter().filter(|(k, _)| k != "wall_s").collect())
        }
        other => other,
    }
}

/// Two nodes 80 m apart, one healthy CBR flow, 6 s.
fn pair(seed: u64) -> ScenarioConfig {
    ScenarioConfig::two_nodes(Variant::Pcmac, 80.0, 100_000.0, seed)
        .with_duration(Duration::from_secs(6))
}

/// A 4-node chain (0-1-2-3, 150 m pitch) with one end-to-end flow, so
/// traffic 0→3 must relay through 1 and 2.
fn chain(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::two_nodes(Variant::Pcmac, 150.0, 60_000.0, seed);
    cfg.name = format!("fault-chain-{seed}");
    cfg.field = (1000.0, 500.0);
    cfg.duration = Duration::from_secs(8);
    cfg.nodes = NodeSetup::Static(
        (0..4)
            .map(|i| Point::new(100.0 + 150.0 * i as f64, 250.0))
            .collect(),
    );
    cfg.flows = vec![FlowSpec {
        flow: FlowId(0),
        src: NodeId(0),
        dst: NodeId(3),
        bytes: 512,
        rate_bps: 60_000.0,
        start: SimTime::ZERO + Duration::from_millis(100),
        stop: SimTime::ZERO + cfg.duration,
        shape: FlowShape::Cbr,
    }];
    cfg
}

#[test]
fn healthy_run_has_no_resilience_section() {
    let report = Simulator::new(pair(1)).run();
    assert!(report.resilience.is_none(), "no fault plan, no section");

    // An empty fault plan behaves like a healthy run but reports.
    let mut cfg = pair(1);
    cfg.faults = Some(FaultConfig::default());
    let report = Simulator::new(cfg).run();
    let res = report.resilience.expect("plan present => section present");
    assert_eq!(res.window_start_s, None);
    assert_eq!(res.crashes + res.recoveries + res.energy_deaths, 0);
    assert_eq!(res.sent_before, report.sent_packets);
    assert_eq!(res.delivered_before, report.delivered_packets);
}

#[test]
fn receiver_crash_suppresses_delivery_during_the_window() {
    let mut cfg = pair(7);
    cfg.faults = Some(FaultConfig {
        crashes: Some(vec![CrashWindow {
            node: 1,
            at_s: 2.0,
            recover_s: Some(4.0),
        }]),
        ..FaultConfig::default()
    });
    let healthy = Simulator::new(pair(7)).run();
    let report = Simulator::new(cfg).run();
    let res = report.resilience.as_ref().expect("section present");

    assert_eq!(res.window_start_s, Some(2.0));
    assert_eq!(res.window_end_s, Some(4.0));
    assert_eq!(res.crashes, 1);
    assert_eq!(res.recoveries, 1);
    assert_eq!(res.dead_nodes_end, 0);
    // Phase accounting must cover every packet exactly once.
    assert_eq!(
        res.sent_before + res.sent_during + res.sent_after,
        report.sent_packets
    );
    assert_eq!(
        res.delivered_before + res.delivered_during + res.delivered_after,
        report.delivered_packets
    );
    // The dead receiver hears nothing live; AODV salvage re-delivers
    // some buffered packets after recovery (still counted in the phase
    // of their creation), so "during" degrades rather than zeroes.
    assert!(res.sent_during > 0, "source keeps emitting into the hole");
    assert!(
        res.pdr_during < res.pdr_before,
        "pdr during the crash ({}) should degrade vs before ({})",
        res.pdr_during,
        res.pdr_before
    );
    assert!(res.pdr_before > 0.9, "healthy phase delivers");
    assert!(
        report.delivered_packets < healthy.delivered_packets,
        "the crash must cost deliveries overall"
    );
    assert!(
        res.reconverged_after_s.is_some(),
        "traffic resumes after recovery"
    );
}

#[test]
fn permanent_crash_counts_dead_nodes_at_end() {
    let mut cfg = pair(3);
    cfg.faults = Some(FaultConfig {
        crashes: Some(vec![CrashWindow {
            node: 1,
            at_s: 1.0,
            recover_s: None,
        }]),
        ..FaultConfig::default()
    });
    let report = Simulator::new(cfg).run();
    let res = report.resilience.expect("section present");
    assert_eq!(res.crashes, 1);
    assert_eq!(res.recoveries, 0);
    assert_eq!(res.dead_nodes_end, 1);
    // The window of an unrecovered crash extends to the end of the run,
    // so there is no "after" phase to reconverge in.
    assert_eq!(res.window_end_s, Some(6.0));
    assert_eq!(res.sent_after, 0);
}

#[test]
fn relay_crash_triggers_route_repair_observations() {
    let mut cfg = chain(11);
    cfg.faults = Some(FaultConfig {
        crashes: Some(vec![CrashWindow {
            node: 1,
            at_s: 3.0,
            recover_s: Some(5.0),
        }]),
        expire_routes: Some(true),
        ..FaultConfig::default()
    });
    let report = Simulator::new(cfg).run();
    let res = report.resilience.expect("section present");
    assert_eq!(res.crashes, 1);
    assert!(
        res.repairs_started >= 1,
        "losing the relay must surface at least one link failure on a data packet"
    );
    assert!(res.repairs_completed <= res.repairs_started);
    if let Some(lat) = &res.repair_latency {
        assert!(lat.count as usize == res.repairs_completed as usize);
        assert!(lat.mean_s >= 0.0 && lat.max_s >= lat.p95_s);
    }
}

#[test]
fn impairment_burst_attenuates_the_channel() {
    let mut cfg = pair(5);
    cfg.faults = Some(FaultConfig {
        impairments: Some(vec![ImpairmentBurst {
            start_s: 2.0,
            stop_s: 4.0,
            extra_loss_db: 40.0,
            noise_mult: Some(4.0),
        }]),
        ..FaultConfig::default()
    });
    let report = Simulator::new(cfg).run();
    let res = report.resilience.expect("section present");
    assert_eq!(res.window_start_s, Some(2.0));
    assert_eq!(res.window_end_s, Some(4.0));
    assert!(
        res.pdr_during < res.pdr_before,
        "40 dB of extra loss must hurt delivery ({} vs {})",
        res.pdr_during,
        res.pdr_before
    );
    assert!(res.pdr_before > 0.9);
}

#[test]
fn zero_strength_impairment_is_bit_identical_to_healthy() {
    // extra_loss 0 dB and noise x1 exercise the whole fault plumbing
    // (events, window accounting) while the channel math must reduce to
    // the healthy expressions exactly.
    let healthy = Simulator::new(pair(9)).run();
    let mut cfg = pair(9);
    cfg.faults = Some(FaultConfig {
        impairments: Some(vec![ImpairmentBurst {
            start_s: 1.0,
            stop_s: 5.0,
            extra_loss_db: 0.0,
            noise_mult: Some(1.0),
        }]),
        ..FaultConfig::default()
    });
    let report = Simulator::new(cfg).run();
    assert_eq!(report.sent_packets, healthy.sent_packets);
    assert_eq!(report.delivered_packets, healthy.delivered_packets);
    assert_eq!(
        report.events,
        healthy.events + 2,
        "only the two burst events differ"
    );
    // Everything except the burst bookkeeping must be bit-identical.
    let strip = |r: &RunReport| match fingerprint(r) {
        serde_json::Value::Map(entries) => serde_json::Value::Map(
            entries
                .into_iter()
                .filter(|(k, _)| k != "resilience" && k != "events")
                .collect(),
        ),
        other => other,
    };
    assert_eq!(strip(&report), strip(&healthy));
}

#[test]
fn energy_budget_exhaustion_is_permanent() {
    let mut cfg = pair(13);
    cfg.faults = Some(FaultConfig {
        // PCMAC sends data at minimum power, so the whole healthy 6 s
        // run radiates only ~1.4 mJ; 0.4 mJ starves the transmitter
        // (max-power RTS preambles dominate the committed energy).
        energy_budget_mj: Some(0.4),
        // Churn recovery scheduled after the death must NOT resurrect.
        churn: Some(ChurnConfig {
            mean_uptime_s: 1.0,
            mean_downtime_s: 0.2,
            start_s: Some(0.0),
            stop_s: Some(6.0),
        }),
        ..FaultConfig::default()
    });
    let report = Simulator::new(cfg).run();
    let res = report.resilience.expect("section present");
    assert!(res.energy_deaths >= 1, "the budget must kill the source");
    assert!(res.dead_nodes_end >= 1, "energy death is permanent");
    let residual = res.residual_energy_mj.expect("budget => residual vector");
    assert_eq!(residual.len(), 2);
    assert!(residual.iter().all(|&r| (0.0..=0.4).contains(&r)));
    assert!(
        residual.contains(&0.0),
        "an exhausted node reports zero residual energy"
    );
}

#[test]
fn churn_crashes_and_recovers_repeatedly() {
    let mut cfg = chain(17);
    cfg.faults = Some(FaultConfig {
        churn: Some(ChurnConfig {
            mean_uptime_s: 1.5,
            mean_downtime_s: 0.5,
            start_s: Some(1.0),
            stop_s: Some(7.0),
        }),
        expire_routes: Some(true),
        ..FaultConfig::default()
    });
    let report = Simulator::new(cfg).run();
    let res = report.resilience.expect("section present");
    assert!(
        res.crashes >= 2,
        "4 nodes x 6 s window at 1.5 s mean uptime churn"
    );
    assert_eq!(
        res.recoveries, res.crashes,
        "every churn crash recovers by the window edge"
    );
    assert_eq!(res.dead_nodes_end, 0);
    assert_eq!(res.window_start_s, Some(1.0));
    assert_eq!(res.window_end_s, Some(7.0));
}

#[test]
fn same_seed_and_plan_reproduce_bit_identical_reports() {
    let build = || {
        let mut cfg = chain(23);
        cfg.faults = Some(FaultConfig {
            crashes: Some(vec![CrashWindow {
                node: 2,
                at_s: 2.5,
                recover_s: Some(4.5),
            }]),
            churn: Some(ChurnConfig {
                mean_uptime_s: 2.0,
                mean_downtime_s: 0.4,
                start_s: Some(1.0),
                stop_s: Some(6.0),
            }),
            impairments: Some(vec![ImpairmentBurst {
                start_s: 5.0,
                stop_s: 6.5,
                extra_loss_db: 10.0,
                noise_mult: Some(2.0),
            }]),
            expire_routes: Some(true),
            energy_budget_mj: Some(400.0),
        });
        cfg
    };
    let a = Simulator::new(build()).run();
    let b = Simulator::new(build()).run();
    assert!(a.events > 0);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(a.resilience.is_some());
}

#[test]
fn fault_report_survives_serde_round_trip() {
    let mut cfg = pair(29);
    cfg.faults = Some(FaultConfig {
        crashes: Some(vec![CrashWindow {
            node: 1,
            at_s: 2.0,
            recover_s: Some(3.0),
        }]),
        ..FaultConfig::default()
    });
    let report = Simulator::new(cfg).run();
    let json = serde_json::to_string(&report).expect("serializes");
    let back: RunReport = serde_json::from_str(&json).expect("reparses");
    assert_eq!(back.resilience, report.resilience);
    assert_eq!(
        serde_json::to_string(&back).unwrap(),
        json,
        "second serialization matches the first"
    );
}

#[test]
fn interference_floor_culling_ignores_impairment() {
    // The grid culling radius uses unimpaired power (a superset of the
    // impaired reach), so raising the floor with a burst active must
    // not change results vs the brute-force channel — covered in
    // channel_equivalence.rs; here we pin the weaker invariant that an
    // impaired run still delivers once the burst lifts.
    let mut cfg = pair(31);
    cfg.interference_floor = Milliwatts(1.559e-10);
    cfg.faults = Some(FaultConfig {
        impairments: Some(vec![ImpairmentBurst {
            start_s: 1.0,
            stop_s: 2.0,
            extra_loss_db: 60.0,
            noise_mult: None,
        }]),
        ..FaultConfig::default()
    });
    let report = Simulator::new(cfg).run();
    let res = report.resilience.expect("section present");
    assert!(res.delivered_after > 0, "the channel heals after the burst");
}
