//! Named (x, y) curves — the shape of the paper's figures.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One labelled curve: the paper's figures are families of these over a
/// shared x-axis (offered load).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. "PCMAC").
    pub name: String,
    /// (x, y) points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty named series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point (x must be non-decreasing for CSV sanity).
    pub fn push(&mut self, x: f64, y: f64) {
        debug_assert!(
            self.points.last().is_none_or(|(px, _)| *px <= x),
            "x must be non-decreasing"
        );
        self.points.push((x, y));
    }

    /// y at the given x, if sampled.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }
}

/// Render a family of series sharing an x-axis as CSV:
/// `x,<name1>,<name2>,...` — one row per x value.
pub fn to_csv(x_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{x_label}");
    for s in series {
        let _ = write!(out, ",{}", s.name);
    }
    out.push('\n');
    let xs: Vec<f64> = series
        .first()
        .map(|s| s.points.iter().map(|(x, _)| *x).collect())
        .unwrap_or_default();
    for (i, x) in xs.iter().enumerate() {
        let _ = write!(out, "{x}");
        for s in series {
            match s.points.get(i) {
                Some((_, y)) => {
                    let _ = write!(out, ",{y:.3}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut s = Series::new("PCMAC");
        s.push(300.0, 360.0);
        s.push(400.0, 420.0);
        assert_eq!(s.y_at(300.0), Some(360.0));
        assert_eq!(s.y_at(500.0), None);
    }

    #[test]
    fn csv_layout() {
        let mut a = Series::new("Basic");
        let mut b = Series::new("PCMAC");
        a.push(300.0, 350.0);
        a.push(400.0, 410.0);
        b.push(300.0, 365.0);
        b.push(400.0, 445.0);
        let csv = to_csv("load_kbps", &[a, b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "load_kbps,Basic,PCMAC");
        assert_eq!(lines[1], "300,350.000,365.000");
        assert_eq!(lines[2], "400,410.000,445.000");
    }

    #[test]
    fn empty_family_yields_header_only() {
        let csv = to_csv("x", &[]);
        assert_eq!(csv, "x\n");
    }
}
