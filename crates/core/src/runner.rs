//! Parallel experiment driver.
//!
//! A single DES run is inherently sequential, but the paper's figures are
//! sweeps: (protocol × offered load × seed) grids of independent runs.
//! This driver fans the grid out over worker threads using
//! `std::thread::scope` and a `crossbeam` work channel, collecting
//! results in submission order.

use crossbeam::channel;
use parking_lot::Mutex;

use crate::config::ScenarioConfig;
use crate::report::RunReport;
use crate::sim::Simulator;

/// Run every scenario, `threads`-wide, preserving input order in the
/// output. `threads == 0` means "one per available core".
pub fn run_parallel(scenarios: Vec<ScenarioConfig>, threads: usize) -> Vec<RunReport> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    };
    let threads = threads.min(scenarios.len().max(1));

    let n = scenarios.len();
    let results: Mutex<Vec<Option<RunReport>>> = Mutex::new((0..n).map(|_| None).collect());
    let (tx, rx) = channel::unbounded::<(usize, ScenarioConfig)>();
    for item in scenarios.into_iter().enumerate() {
        tx.send(item).expect("queue open");
    }
    drop(tx);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let results = &results;
            scope.spawn(move || {
                while let Ok((idx, cfg)) = rx.recv() {
                    let report = Simulator::new(cfg).run();
                    results.lock()[idx] = Some(report);
                }
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every scenario ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Variant;
    use pcmac_engine::Duration;

    #[test]
    fn parallel_matches_sequential() {
        let mk = |seed| {
            ScenarioConfig::two_nodes(Variant::Basic, 100.0, 80_000.0, seed)
                .with_duration(Duration::from_secs(2))
        };
        let seq: Vec<_> = (0..4).map(|s| Simulator::new(mk(s)).run()).collect();
        let par = run_parallel((0..4).map(mk).collect(), 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.seed, b.seed, "order preserved");
            assert_eq!(a.delivered_packets, b.delivered_packets, "determinism");
            assert_eq!(a.mac.rts_sent, b.mac.rts_sent);
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        let cfgs = vec![
            ScenarioConfig::two_nodes(Variant::Basic, 100.0, 50_000.0, 1)
                .with_duration(Duration::from_secs(1)),
        ];
        let out = run_parallel(cfgs, 0);
        assert_eq!(out.len(), 1);
    }
}
