//! # pcmac-engine — deterministic discrete-event simulation kernel
//!
//! The foundation crate of the PCMAC reproduction. It provides everything a
//! wireless network simulator needs below the domain layer:
//!
//! * [`time`] — nanosecond-resolution simulation time ([`SimTime`],
//!   [`Duration`]) with saturating/checked arithmetic.
//! * [`queue`] — a deterministic event queue ([`EventQueue`]): events with
//!   identical timestamps pop in insertion order, so runs with the same seed
//!   are bit-for-bit reproducible.
//! * [`timer`] — generation-counted timer tokens ([`TimerSlot`]) giving O(1)
//!   logical cancellation without touching the heap.
//! * [`rng`] — seedable, stream-split random number generation
//!   ([`RngStream`]) so each model component draws from an independent,
//!   reproducible sequence.
//! * [`geom`] — 2-D geometry ([`Point`], [`Vector`]) for node positions and
//!   mobility.
//! * [`grid`] — a uniform-grid spatial index ([`UniformGrid`]) answering
//!   "who is within radius r?" in O(local density) instead of O(N); the
//!   wireless channel's per-transmission neighbourhood query.
//! * [`units`] — RF power quantities ([`Milliwatts`], [`Dbm`]) and safe
//!   conversions between them.
//! * [`ids`] — strongly-typed identifiers ([`NodeId`], [`FlowId`], …).
//!
//! The kernel is intentionally generic: the event payload type is a type
//! parameter, and the main loop lives in the `pcmac` core crate where the
//! domain event enum is defined. This keeps the kernel reusable and
//! independently testable.

pub mod geom;
pub mod grid;
pub mod ids;
pub mod queue;
pub mod rng;
pub mod snap_impls;
pub mod time;
pub mod timer;
pub mod units;

pub use geom::{Point, Vector};
pub use grid::UniformGrid;
pub use ids::{FlowId, NodeId, PacketId, SessionId};
pub use queue::{EventQueue, ScheduledEvent};
pub use rng::RngStream;
pub use time::{Duration, SimTime};
pub use timer::{TimerSlot, TimerToken};
pub use units::{Dbm, Milliwatts};
