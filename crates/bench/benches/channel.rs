//! Channel fan-out: spatial index vs brute-force scan.
//!
//! Runs the same static sparse-field scenario under
//! `ChannelIndexMode::Grid` and `ChannelIndexMode::BruteForce` at
//! N ∈ {50, 100, 200, 400} nodes, timing whole simulation runs (the
//! channel fan-out dominates them: every transmission fans out to its
//! audible neighbourhood). The field grows with N at constant density
//! (one node per 250 m × 250 m on average) and the interference floor is
//! ns-2's carrier-sense threshold, giving a 550 m reach at maximum
//! power — sparse enough that a transmission's 3×3 cell block covers a
//! small fraction of the field, which is exactly the regime the paper's
//! large-network claims live in.
//!
//! Besides the usual criterion output, the comparison is written to
//! `BENCH_channel.json` at the repository root, and the run **fails**
//! if the indexed channel does not beat the brute-force scan at
//! N ≥ 200 (the regression bar from the issue's acceptance criteria).

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use pcmac::{ChannelIndexMode, FlowShape, FlowSpec, NodeSetup, ScenarioConfig, Simulator, Variant};
use pcmac_engine::{Duration, FlowId, Milliwatts, NodeId, Point, RngStream, SimTime};

/// Node counts under comparison.
const SIZES: [usize; 4] = [50, 100, 200, 400];

/// Field side for a given node count: constant density, one node per
/// 250 m × 250 m.
fn field_side(n: usize) -> f64 {
    (n as f64).sqrt() * 250.0
}

/// The benchmark scenario: N static nodes scattered uniformly, N/10
/// saturating CBR flows between random pairs, 1 simulated second,
/// basic 802.11 (every frame at maximum power — the heaviest fan-out).
fn scenario(n: usize, mode: ChannelIndexMode) -> ScenarioConfig {
    let side = field_side(n);
    let duration = Duration::from_secs(1);
    let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 1000.0, 1);
    cfg.name = format!("channel-bench-{n}");
    cfg.field = (side, side);
    cfg.duration = duration;
    // ns-2's CSThresh: reach 550 m at max power, so reception is local
    // relative to the field — the regime a spatial index exists for.
    cfg.interference_floor = Milliwatts(1.559e-8);
    cfg.channel_index = mode;
    let mut rng = RngStream::derive(7, "bench.channel.placement");
    cfg.nodes = NodeSetup::Static(
        (0..n)
            .map(|_| Point::new(rng.uniform(0.0, side), rng.uniform(0.0, side)))
            .collect(),
    );
    let mut rng = RngStream::derive(7, "bench.channel.flows");
    cfg.flows = (0..(n / 10).max(2) as u32)
        .map(|i| {
            let src = rng.below(n as u64) as u32;
            let dst = loop {
                let d = rng.below(n as u64) as u32;
                if d != src {
                    break d;
                }
            };
            FlowSpec {
                flow: FlowId(i),
                src: NodeId(src),
                dst: NodeId(dst),
                bytes: 512,
                rate_bps: 80_000.0,
                start: SimTime::ZERO + Duration::from_millis(50 + 13 * i as u64),
                stop: SimTime::ZERO + duration,
                shape: FlowShape::Cbr,
            }
        })
        .collect();
    cfg
}

fn bench_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel");
    g.sample_size(10);
    for &n in &SIZES {
        g.bench_function(format!("brute/{n}"), |b| {
            b.iter(|| {
                let r = Simulator::new(scenario(n, ChannelIndexMode::BruteForce)).run();
                black_box(r.events)
            });
        });
        g.bench_function(format!("grid/{n}"), |b| {
            b.iter(|| {
                let r = Simulator::new(scenario(n, ChannelIndexMode::Grid)).run();
                black_box(r.events)
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = channel;
    config = Criterion::default().sample_size(10);
    targets = bench_channel
);

fn main() {
    channel();

    // Fold the measurements into BENCH_channel.json at the repo root.
    let measurements = criterion::take_measurements();
    let mean = |id: &str| {
        measurements
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.mean_ns)
            .expect("benchmark ran")
    };

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    println!(
        "\n{:>6} {:>12} {:>12} {:>9}",
        "N", "brute", "grid", "speedup"
    );
    for &n in &SIZES {
        let brute_ns = mean(&format!("channel/brute/{n}"));
        let grid_ns = mean(&format!("channel/grid/{n}"));
        let speedup = brute_ns / grid_ns;
        println!(
            "{n:>6} {:>10.2}ms {:>10.2}ms {speedup:>8.2}x",
            brute_ns / 1e6,
            grid_ns / 1e6
        );
        if n >= 200 && speedup <= 1.0 {
            failures.push(format!(
                "indexed channel must beat brute force at N={n} (got {speedup:.2}x)"
            ));
        }
        rows.push(serde_json::Value::Map(vec![
            ("n".into(), serde_json::Value::U64(n as u64)),
            (
                "field_m".into(),
                serde_json::Value::F64(field_side(n).round()),
            ),
            ("brute_ns".into(), serde_json::Value::F64(brute_ns)),
            ("grid_ns".into(), serde_json::Value::F64(grid_ns)),
            ("speedup".into(), serde_json::Value::F64(speedup)),
        ]));
    }

    let doc = serde_json::Value::Map(vec![
        ("bench".into(), serde_json::Value::Str("channel".into())),
        (
            "description".into(),
            serde_json::Value::Str(
                "whole-run wall time, static sparse field (1 node / 250m x 250m, \
                 floor = CSThresh), brute-force O(N) channel vs uniform-grid index"
                    .into(),
            ),
        ),
        ("results".into(), serde_json::Value::Seq(rows)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_channel.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n")
        .expect("write BENCH_channel.json");
    println!("\nwrote {path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
