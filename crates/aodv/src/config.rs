//! AODV parameters.

use pcmac_engine::Duration;
use serde::{Deserialize, Serialize};

/// Tunable constants of the routing agent. Defaults follow the CMU ns-2
/// AODV module of the paper's era (link-layer failure detection, 10 s
/// active route lifetime) with RFC 3561 shapes elsewhere.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AodvConfig {
    /// Lifetime of an actively-used route before it must be refreshed.
    pub active_route_timeout: Duration,
    /// How long a (origin, rreq-id) pair suppresses duplicate floods.
    pub rreq_cache_timeout: Duration,
    /// Wait for an RREP before retrying a discovery.
    pub rreq_wait: Duration,
    /// Discovery attempts before declaring the destination unreachable.
    pub rreq_retries: u8,
    /// Send-buffer capacity (packets awaiting discovery).
    pub buffer_capacity: usize,
    /// Maximum time a packet may wait in the send buffer.
    pub buffer_timeout: Duration,
    /// TTL for flooded RREQs (network-wide; no expanding ring).
    pub rreq_ttl: u8,
}

impl Default for AodvConfig {
    fn default() -> Self {
        AodvConfig {
            active_route_timeout: Duration::from_secs(10),
            rreq_cache_timeout: Duration::from_secs(6),
            rreq_wait: Duration::from_millis(1000),
            rreq_retries: 3,
            buffer_capacity: 64,
            buffer_timeout: Duration::from_secs(30),
            rreq_ttl: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = AodvConfig::default();
        assert!(c.rreq_retries >= 1);
        assert!(c.buffer_capacity > 0);
        assert!(c.active_route_timeout > c.rreq_wait);
        assert!(c.buffer_timeout > c.rreq_wait * c.rreq_retries as u64);
    }
}
