//! Network packets.
//!
//! A [`Packet`] is what travels end-to-end: application data (the paper's
//! 512-byte CBR payloads) or an AODV control message. The MAC wraps packets
//! in frames hop by hop; the `src`/`dst` here are the *network* endpoints,
//! not the per-hop MAC addresses.

use pcmac_engine::{FlowId, NodeId, PacketId, SimTime};

/// IPv4 header size modelled on every packet (bytes).
pub const IP_HEADER_BYTES: u32 = 20;
/// UDP header size modelled on data packets (bytes).
pub const UDP_HEADER_BYTES: u32 = 8;

/// AODV route request (flooded network-wide).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rreq {
    /// Flood identifier, unique per originator.
    pub rreq_id: u32,
    /// The node that started the discovery.
    pub origin: NodeId,
    /// Originator's own sequence number.
    pub origin_seq: u32,
    /// The destination being sought.
    pub target: NodeId,
    /// Last known sequence number for the target (`None` = unknown).
    pub target_seq: Option<u32>,
    /// Hops travelled so far.
    pub hop_count: u8,
}

/// AODV route reply (unicast back along the reverse path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rrep {
    /// The discovery originator this reply is heading to.
    pub origin: NodeId,
    /// The destination the route leads to.
    pub target: NodeId,
    /// Destination sequence number certified by this reply.
    pub target_seq: u32,
    /// Hops from the replying node to the target.
    pub hop_count: u8,
}

/// AODV route error (unicast/broadcast upstream on link breakage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rerr {
    /// Destinations now unreachable, with their bumped sequence numbers.
    pub unreachable: Vec<(NodeId, u32)>,
}

/// What a packet carries.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Application data of the given UDP payload size (bytes).
    Data {
        /// UDP payload length in bytes (512 in the paper's workload).
        bytes: u32,
    },
    /// AODV route request.
    Rreq(Rreq),
    /// AODV route reply.
    Rrep(Rrep),
    /// AODV route error.
    Rerr(Rerr),
}

impl Payload {
    /// `true` for routing-protocol control payloads.
    pub fn is_routing(&self) -> bool {
        !matches!(self, Payload::Data { .. })
    }

    /// On-air size of the payload itself (bytes), excluding IP header.
    pub fn body_bytes(&self) -> u32 {
        match self {
            Payload::Data { bytes } => UDP_HEADER_BYTES + bytes,
            // RFC 3561 message sizes.
            Payload::Rreq(_) => 24,
            Payload::Rrep(_) => 20,
            Payload::Rerr(r) => 4 + 8 * r.unreachable.len() as u32,
        }
    }
}

/// An end-to-end network packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Unique id assigned at creation (delay accounting).
    pub id: PacketId,
    /// Flow this packet belongs to (`None` for routing control).
    pub flow: Option<FlowId>,
    /// Network-layer source.
    pub src: NodeId,
    /// Network-layer destination (may be [`NodeId::BROADCAST`]).
    pub dst: NodeId,
    /// Creation time at the source (end-to-end delay reference).
    pub created_at: SimTime,
    /// Remaining hop budget; decremented per forward, dropped at zero.
    pub ttl: u8,
    /// The payload.
    pub payload: Payload,
}

impl Packet {
    /// Default IP TTL used by the stack.
    pub const DEFAULT_TTL: u8 = 32;

    /// A data packet of `bytes` UDP payload.
    pub fn data(
        id: PacketId,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        created_at: SimTime,
    ) -> Self {
        Packet {
            id,
            flow: Some(flow),
            src,
            dst,
            created_at,
            ttl: Self::DEFAULT_TTL,
            payload: Payload::Data { bytes },
        }
    }

    /// A routing-control packet.
    pub fn control(
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        created_at: SimTime,
        payload: Payload,
    ) -> Self {
        debug_assert!(payload.is_routing());
        Packet {
            id,
            flow: None,
            src,
            dst,
            created_at,
            ttl: Self::DEFAULT_TTL,
            payload,
        }
    }

    /// Total network-layer size (bytes): IP header + payload body. This is
    /// what the MAC wraps in a frame.
    pub fn size_bytes(&self) -> u32 {
        IP_HEADER_BYTES + self.payload.body_bytes()
    }

    /// `true` for routing-protocol packets (these keep the four-way
    /// handshake under PCMAC and ride the queue's priority lane).
    pub fn is_routing(&self) -> bool {
        self.payload.is_routing()
    }
}

mod snap {
    //! Checkpoint encoding of packets. Packets appear inside frames on the
    //! air, interface queues, AODV buffers and PCMAC retransmission copies,
    //! so their encoding must be exact — ids, TTLs and creation times all
    //! feed delay accounting and duplicate suppression after restore.

    use super::{Packet, Payload, Rerr, Rrep, Rreq};
    use pcmac_snap::{Snap, SnapError, SnapReader, SnapWriter};

    pcmac_snap::snap_struct!(Rreq {
        rreq_id,
        origin,
        origin_seq,
        target,
        target_seq,
        hop_count,
    });

    pcmac_snap::snap_struct!(Rrep {
        origin,
        target,
        target_seq,
        hop_count,
    });

    pcmac_snap::snap_struct!(Rerr { unreachable });

    impl Snap for Payload {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                Payload::Data { bytes } => {
                    w.u8(0);
                    bytes.save(w);
                }
                Payload::Rreq(m) => {
                    w.u8(1);
                    m.save(w);
                }
                Payload::Rrep(m) => {
                    w.u8(2);
                    m.save(w);
                }
                Payload::Rerr(m) => {
                    w.u8(3);
                    m.save(w);
                }
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(Payload::Data {
                    bytes: Snap::load(r)?,
                }),
                1 => Ok(Payload::Rreq(Snap::load(r)?)),
                2 => Ok(Payload::Rrep(Snap::load(r)?)),
                3 => Ok(Payload::Rerr(Snap::load(r)?)),
                _ => Err(SnapError::Corrupt("payload tag")),
            }
        }
    }

    pcmac_snap::snap_struct!(Packet {
        id,
        flow,
        src,
        dst,
        created_at,
        ttl,
        payload,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_packet(bytes: u32) -> Packet {
        Packet::data(
            PacketId(1),
            FlowId(0),
            NodeId(1),
            NodeId(2),
            bytes,
            SimTime::ZERO,
        )
    }

    #[test]
    fn paper_data_packet_is_540_bytes_on_air() {
        // 512 payload + 8 UDP + 20 IP.
        assert_eq!(data_packet(512).size_bytes(), 540);
    }

    #[test]
    fn control_sizes_match_rfc_shapes() {
        let rreq = Packet::control(
            PacketId(2),
            NodeId(1),
            NodeId::BROADCAST,
            SimTime::ZERO,
            Payload::Rreq(Rreq {
                rreq_id: 1,
                origin: NodeId(1),
                origin_seq: 1,
                target: NodeId(9),
                target_seq: None,
                hop_count: 0,
            }),
        );
        assert_eq!(rreq.size_bytes(), 20 + 24);
        assert!(rreq.is_routing());

        let rerr = Payload::Rerr(Rerr {
            unreachable: vec![(NodeId(3), 7), (NodeId(4), 9)],
        });
        assert_eq!(rerr.body_bytes(), 4 + 16);
    }

    #[test]
    fn data_is_not_routing() {
        assert!(!data_packet(512).is_routing());
        assert!(Payload::Rrep(Rrep {
            origin: NodeId(0),
            target: NodeId(1),
            target_seq: 0,
            hop_count: 0
        })
        .is_routing());
    }

    #[test]
    fn ttl_defaults() {
        assert_eq!(data_packet(1).ttl, Packet::DEFAULT_TTL);
    }
}
