//! The observability layer: per-layer counters, time-series probes, and
//! a packet-fate drop taxonomy.
//!
//! A [`RunReport`](crate::RunReport) says *what* happened (PDR, latency,
//! energy); this module records *why* — which layer dropped every
//! undelivered packet, how busy the channel was over time, how hard the
//! MAC retried, and what the channel hot path cost. Everything here is
//! opt-in via [`MetricsConfig`] (`cfg.metrics = Some(..)`) and obeys two
//! contracts:
//!
//! * **Zero behavioral cost.** Collection only *reads* the deterministic
//!   event stream. A metrics-on run is bit-identical in behavior to a
//!   metrics-off run: the periodic [`SimEvent::MetricsProbe`]
//!   (crate::SimEvent::MetricsProbe) events never mutate protocol state,
//!   and their queue insertions shift sequence numbers monotonically
//!   without reordering any other pair of events.
//! * **Bit-identical metrics.** [`SimMetrics`] carries no wall-clock
//!   values and every field is derived from the event stream, so the
//!   metrics section itself is identical across reruns and across the
//!   refresh × cache equivalence matrix (`channel_equivalence` proves
//!   both).
//!
//! The drop taxonomy is conservation-complete by construction: every
//! application packet is registered at emission and assigned exactly one
//! terminal fate (delivered, one of six drop reasons, or still in flight
//! at the end of the run), so the [`DropTaxonomy`] counts always sum to
//! `sent`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pcmac_aodv::DropReason;
use pcmac_engine::{Duration, PacketId, SimTime};
use pcmac_phy::SparseCacheStats;

use crate::node::Node;
use crate::report::LatencySummary;

/// Number of buckets in the MAC retransmission histogram: bucket `k`
/// counts exchanges that took `k` retries (short + long), the last
/// bucket is `>= 7`.
pub const RETX_BUCKETS: usize = 8;

/// Number of buckets in the per-node radiated-energy histogram.
pub const ENERGY_BUCKETS: usize = 16;

/// Enables the observability layer on a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsConfig {
    /// Seconds between time-series probe samples. Must be finite and
    /// positive; one [`ProbeSample`] is recorded at every multiple of
    /// this interval that falls inside the run.
    pub probe_interval_s: f64,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            probe_interval_s: 1.0,
        }
    }
}

/// One fixed-interval time-series sample, taken by the periodic
/// `MetricsProbe` event. Faulted runs show the dip-and-recover curve
/// here rather than only the phase-split scalars of the resilience
/// report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeSample {
    /// Simulated time of the sample (seconds).
    pub t_s: f64,
    /// Nodes currently up (not crashed / energy-dead).
    pub live_nodes: u64,
    /// Live nodes whose data radio observed a busy carrier.
    pub busy_nodes: u64,
    /// `busy_nodes / live_nodes` (`0` when no node is live).
    pub busy_fraction: f64,
    /// Mean MAC interface-queue depth over live nodes (including the
    /// in-service frame).
    pub mean_queue_len: f64,
    /// Application packets emitted so far (cumulative).
    pub sent_cum: u64,
    /// Application packets delivered so far (cumulative).
    pub delivered_cum: u64,
}

/// Where every undelivered application packet went. Counts are derived
/// from a per-packet fate map, so they are conservation-complete:
/// `sent == delivered_unique + emit_dead + mac_queue_full + no_route +
/// buffer_overflow + buffer_timeout + ttl_expired + in_flight_end`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropTaxonomy {
    /// Application packets emitted.
    pub sent: u64,
    /// Distinct packets delivered to their destination sink.
    pub delivered_unique: u64,
    /// Deliveries of a packet that had already arrived once.
    pub duplicate_deliveries: u64,
    /// Emitted while the source node was down (lost on the spot).
    pub emit_dead: u64,
    /// Rejected by a full MAC interface queue.
    pub mac_queue_full: u64,
    /// Dropped by routing: no route after discovery failed or an
    /// unsalvageable link break.
    pub no_route: u64,
    /// Dropped by routing: discovery buffer overflowed.
    pub buffer_overflow: u64,
    /// Dropped by routing: buffered longer than the discovery timeout.
    pub buffer_timeout: u64,
    /// Dropped by routing: hop budget exhausted.
    pub ttl_expired: u64,
    /// Still queued, buffered, or in the air when the run ended.
    pub in_flight_end: u64,
}

impl DropTaxonomy {
    /// Packets assigned a terminal drop reason.
    pub fn total_dropped(&self) -> u64 {
        self.emit_dead
            + self.mac_queue_full
            + self.no_route
            + self.buffer_overflow
            + self.buffer_timeout
            + self.ttl_expired
    }

    /// `true` iff the counts account for every emitted packet.
    pub fn conserved(&self) -> bool {
        self.sent == self.delivered_unique + self.total_dropped() + self.in_flight_end
    }
}

/// MAC-layer outcome counters, network-wide.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MacMetrics {
    /// RTS frames transmitted.
    pub rts_sent: u64,
    /// Unicast DATA frames transmitted (including retries).
    pub data_sent: u64,
    /// CTS timeouts (RTS attempt failed).
    pub cts_timeouts: u64,
    /// ACK timeouts (DATA attempt failed).
    pub ack_timeouts: u64,
    /// Packets dropped after exhausting retries.
    pub retry_drops: u64,
    /// Packets rejected by full interface queues.
    pub queue_drops: u64,
    /// Corrupted receptions observed (collision indicator).
    pub rx_errors: u64,
    /// Retry-count distribution over finished exchanges: bucket `k`
    /// counts exchanges finished after `k` retries, bucket 7 is `>= 7`.
    pub retx_histogram: Vec<u64>,
}

/// PHY-layer arrival fates on the data channel: the frame-level drop
/// taxonomy (why receivers failed to decode).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhyMetrics {
    /// Frame arrivals observed (every receiver of every transmission).
    pub arrivals: u64,
    /// Arrivals decoded successfully.
    pub decoded_ok: u64,
    /// Locked arrivals corrupted by overlapping power (collisions).
    pub collided: u64,
    /// Successful decodes that survived at least one overlapping
    /// arrival (capture effect wins).
    pub capture_wins: u64,
    /// Addressed arrivals lost because the radio was already locked to
    /// another frame (captured away).
    pub captured_away: u64,
    /// Addressed arrivals below the receive threshold (heard as noise
    /// at most).
    pub below_rx_thresh: u64,
    /// Addressed arrivals missed because the receiver was transmitting.
    pub missed_while_tx: u64,
    /// Arrivals that began during an active channel-impairment burst.
    pub impaired_arrivals: u64,
}

/// Routing-layer control overhead and discovery latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingMetrics {
    /// RREQ floods originated.
    pub rreq_originated: u64,
    /// RREQs rebroadcast.
    pub rreq_forwarded: u64,
    /// RREPs generated.
    pub rrep_generated: u64,
    /// RREPs forwarded.
    pub rrep_forwarded: u64,
    /// RERRs sent.
    pub rerr_sent: u64,
    /// Route discoveries started.
    pub discoveries_started: u64,
    /// Route discoveries that gave up.
    pub discoveries_failed: u64,
    /// Seconds from discovery start to the route becoming usable, over
    /// completed discoveries (`None` when none completed).
    pub discovery_latency: Option<LatencySummary>,
}

/// TX-power usage and per-node radiated-energy distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxPowerMetrics {
    /// The scenario's discrete power levels (mW), index-aligned with
    /// `data_tx_by_level`.
    pub levels_mw: Vec<f64>,
    /// Data-channel transmissions per power level.
    pub data_tx_by_level: Vec<u64>,
    /// Data-channel transmissions at a power matching no listed level
    /// (always 0 for the paper's variants; a guard, not a bucket).
    pub data_tx_unclassified: u64,
    /// Control-channel broadcasts (PCMAC tolerance frames).
    pub ctrl_tx: u64,
    /// Per-node radiated energy histogram; bucket width is
    /// `energy_bucket_mj`, the last bucket is open-ended.
    pub energy_histogram: Vec<u64>,
    /// Width of one energy histogram bucket (mJ).
    pub energy_bucket_mj: f64,
    /// Mean radiated energy per node (mJ).
    pub energy_mean_mj: f64,
    /// Highest per-node radiated energy (mJ).
    pub energy_max_mj: f64,
}

/// Hot-path self-profiling counters: what the channel maintenance
/// machinery did during the run. Pure work counts — no wall-clock
/// values — so the profile is bit-identical across reruns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotPathProfile {
    /// Spatial-index receiver queries issued (one per transmission).
    pub grid_queries: u64,
    /// Candidate receivers returned across all queries.
    pub grid_candidates: u64,
    /// Lazy-refresh deadline pops processed.
    pub refresh_pops: u64,
    /// Lazy-refresh deadlines re-armed.
    pub refresh_rearms: u64,
    /// Exact position samples forced outside the deadline schedule.
    pub exact_samples: u64,
    /// Metrics probe events processed.
    pub probes: u64,
    /// Block-sparse gain-cache effectiveness (`None` unless the run
    /// used `GainCacheMode::Sparse`).
    pub sparse_cache: Option<SparseCacheStats>,
}

/// The serialized observability section of a [`RunReport`]
/// (crate::RunReport): per-layer counters, the probe time series, the
/// drop taxonomy, and the hot-path profile. Contains no wall-clock
/// values — events/sec lives beside it in campaign artifacts, computed
/// from `RunReport::{events, wall_s}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// The probe interval the time series was sampled at (seconds).
    pub probe_interval_s: f64,
    /// Fixed-interval time-series samples, in time order.
    pub samples: Vec<ProbeSample>,
    /// Packet-fate accounting (conservation-complete).
    pub drops: DropTaxonomy,
    /// MAC outcome counters + retry histogram.
    pub mac: MacMetrics,
    /// PHY arrival fates (frame-level drop taxonomy).
    pub phy: PhyMetrics,
    /// Routing control overhead + discovery latency.
    pub routing: RoutingMetrics,
    /// TX-power usage and energy distribution.
    pub tx_power: TxPowerMetrics,
    /// Channel hot-path self-profiling counters.
    pub hot_path: HotPathProfile,
}

/// Terminal fate of one application packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    /// Emitted, no terminal outcome observed yet.
    InFlight,
    /// Reached its destination sink.
    Delivered,
    /// Dropped; the first recorded reason wins. The global `(time,
    /// rank)` of the dropping event is kept so region shards — each of
    /// which observes only the drops its own nodes perform — can agree
    /// with the single-threaded run on *which* drop came first.
    Dropped {
        /// The first recorded reason.
        reason: Drop,
        /// When the drop was recorded.
        t: SimTime,
        /// Rank of the recording event (tie-break at equal times).
        rank: u128,
    },
}

/// The six terminal drop reasons of the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Drop {
    /// Emitted while the source was down.
    EmitDead,
    /// MAC interface queue full.
    MacQueueFull,
    /// Routing: no route.
    NoRoute,
    /// Routing: discovery buffer overflow.
    BufferOverflow,
    /// Routing: discovery buffer timeout.
    BufferTimeout,
    /// Routing: TTL exhausted.
    TtlExpired,
}

impl From<DropReason> for Drop {
    fn from(r: DropReason) -> Drop {
        match r {
            DropReason::NoRoute => Drop::NoRoute,
            DropReason::BufferOverflow => Drop::BufferOverflow,
            DropReason::BufferTimeout => Drop::BufferTimeout,
            DropReason::TtlExpired => Drop::TtlExpired,
        }
    }
}

/// One probe sample in raw integer form (see [`MetricsState::samples`]).
#[derive(Debug, Clone, Copy)]
struct RawSample {
    t: SimTime,
    live: u64,
    busy: u64,
    queue_sum: u64,
    sent_cum: u64,
    delivered_cum: u64,
}

/// Portable checkpoint image of [`MetricsState`]: everything that
/// cannot be rebuilt from the scenario config. Captured by
/// [`MetricsState::capture`], re-applied by
/// [`MetricsState::restore_from`].
#[derive(Debug, Clone)]
pub(crate) struct MetricsSnap {
    probes_scheduled: u64,
    samples: Vec<RawSample>,
    sent: u64,
    delivered_cum: u64,
    duplicate_deliveries: u64,
    fates: HashMap<u64, Fate>,
    phy: PhyMetrics,
    rx_overlap: Vec<bool>,
    data_tx_by_level: Vec<u64>,
    data_tx_unclassified: u64,
    ctrl_tx: u64,
    hot: HotPathProfile,
}

mod snap {
    //! Wire format for the metrics checkpoint section.

    use super::{Drop, Fate, HotPathProfile, MetricsSnap, PhyMetrics, RawSample};
    use pcmac_snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for Drop {
        fn save(&self, w: &mut SnapWriter) {
            w.u8(match self {
                Drop::EmitDead => 0,
                Drop::MacQueueFull => 1,
                Drop::NoRoute => 2,
                Drop::BufferOverflow => 3,
                Drop::BufferTimeout => 4,
                Drop::TtlExpired => 5,
            });
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => Drop::EmitDead,
                1 => Drop::MacQueueFull,
                2 => Drop::NoRoute,
                3 => Drop::BufferOverflow,
                4 => Drop::BufferTimeout,
                5 => Drop::TtlExpired,
                _ => return Err(SnapError::Corrupt("drop tag")),
            })
        }
    }

    impl Snap for Fate {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                Fate::InFlight => w.u8(0),
                Fate::Delivered => w.u8(1),
                Fate::Dropped { reason, t, rank } => {
                    w.u8(2);
                    reason.save(w);
                    t.save(w);
                    w.u128(*rank);
                }
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => Fate::InFlight,
                1 => Fate::Delivered,
                2 => Fate::Dropped {
                    reason: Snap::load(r)?,
                    t: Snap::load(r)?,
                    rank: r.u128()?,
                },
                _ => return Err(SnapError::Corrupt("fate tag")),
            })
        }
    }

    impl Snap for HotPathProfile {
        fn save(&self, w: &mut SnapWriter) {
            // The sparse-cache stats are only attached at `finish`, never
            // while a run is live, so the checkpoint image omits them.
            debug_assert!(self.sparse_cache.is_none());
            w.u64(self.grid_queries);
            w.u64(self.grid_candidates);
            w.u64(self.refresh_pops);
            w.u64(self.refresh_rearms);
            w.u64(self.exact_samples);
            w.u64(self.probes);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(HotPathProfile {
                grid_queries: r.u64()?,
                grid_candidates: r.u64()?,
                refresh_pops: r.u64()?,
                refresh_rearms: r.u64()?,
                exact_samples: r.u64()?,
                probes: r.u64()?,
                sparse_cache: None,
            })
        }
    }

    pcmac_snap::snap_struct!(PhyMetrics {
        arrivals,
        decoded_ok,
        collided,
        capture_wins,
        captured_away,
        below_rx_thresh,
        missed_while_tx,
        impaired_arrivals,
    });

    pcmac_snap::snap_struct!(RawSample {
        t,
        live,
        busy,
        queue_sum,
        sent_cum,
        delivered_cum,
    });

    pcmac_snap::snap_struct!(MetricsSnap {
        probes_scheduled,
        samples,
        sent,
        delivered_cum,
        duplicate_deliveries,
        fates,
        phy,
        rx_overlap,
        data_tx_by_level,
        data_tx_unclassified,
        ctrl_tx,
        hot,
    });
}

/// Live collection state owned by the simulator (`Some` exactly when
/// the scenario enabled metrics). The simulator mutates the public
/// counters inline on its hot paths and calls the `note_*` methods at
/// the packet-fate sites; [`MetricsState::finish`] folds everything
/// into the serializable [`SimMetrics`].
#[derive(Debug, Clone)]
pub(crate) struct MetricsState {
    interval: Duration,
    /// `MetricsProbe` events scheduled so far — subtracted from the
    /// queue's scheduled total so the reported event count matches a
    /// metrics-off run exactly.
    pub(crate) probes_scheduled: u64,
    /// Raw integer probe samples; the derived fractions are computed at
    /// [`MetricsState::finish`], so per-shard samples sum exactly.
    samples: Vec<RawSample>,
    sent: u64,
    delivered_cum: u64,
    duplicate_deliveries: u64,
    /// Fate per emitted application packet, keyed by raw `PacketId`.
    fates: HashMap<u64, Fate>,
    /// PHY arrival fates, mutated inline by the dispatch loop.
    pub(crate) phy: PhyMetrics,
    /// Per-receiver flag: the arrival currently locked at this node has
    /// seen at least one overlapping arrival (capture-effect bookkeeping).
    pub(crate) rx_overlap: Vec<bool>,
    /// The scenario's power levels (mW), for TX classification.
    levels_mw: Vec<f64>,
    data_tx_by_level: Vec<u64>,
    data_tx_unclassified: u64,
    ctrl_tx: u64,
    /// Hot-path work counters, mutated inline.
    pub(crate) hot: HotPathProfile,
}

impl MetricsState {
    pub(crate) fn new(cfg: MetricsConfig, node_count: usize, levels_mw: Vec<f64>) -> MetricsState {
        let n = levels_mw.len();
        MetricsState {
            interval: Duration::from_secs_f64(cfg.probe_interval_s),
            probes_scheduled: 0,
            samples: Vec::new(),
            sent: 0,
            delivered_cum: 0,
            duplicate_deliveries: 0,
            fates: HashMap::new(),
            phy: PhyMetrics::default(),
            rx_overlap: vec![false; node_count],
            levels_mw,
            data_tx_by_level: vec![0; n],
            data_tx_unclassified: 0,
            ctrl_tx: 0,
            hot: HotPathProfile::default(),
        }
    }

    /// The probe period.
    pub(crate) fn interval(&self) -> Duration {
        self.interval
    }

    /// Register an emitted application packet (fate: in flight).
    pub(crate) fn note_sent(&mut self, id: PacketId) {
        self.sent += 1;
        self.fates.insert(id.0, Fate::InFlight);
    }

    /// The packet reached its destination sink. Delivery is sticky: it
    /// overrides a previously recorded drop (a salvaged copy made it).
    /// An unseen id is legal on a region shard (the source lives in
    /// another region, so emission was registered there) and records the
    /// delivery directly; callers filter routing control packets out.
    pub(crate) fn note_delivered(&mut self, id: PacketId) {
        match self.fates.entry(id.0) {
            Entry::Occupied(mut o) => {
                if *o.get() == Fate::Delivered {
                    self.duplicate_deliveries += 1;
                } else {
                    o.insert(Fate::Delivered);
                    self.delivered_cum += 1;
                }
            }
            Entry::Vacant(v) => {
                v.insert(Fate::Delivered);
                self.delivered_cum += 1;
            }
        }
    }

    /// The packet hit a terminal drop at the event keyed `(t, rank)`.
    /// Only the first reason sticks, and a delivered packet is never
    /// reclassified. As with deliveries, an unseen id on a region shard
    /// records the drop directly; [`MetricsState::merge`] keeps the
    /// globally-first drop when several shards dropped copies.
    pub(crate) fn note_dropped(&mut self, id: PacketId, reason: Drop, t: SimTime, rank: u128) {
        match self.fates.entry(id.0) {
            Entry::Occupied(mut o) => {
                if *o.get() == Fate::InFlight {
                    o.insert(Fate::Dropped { reason, t, rank });
                }
            }
            Entry::Vacant(v) => {
                v.insert(Fate::Dropped { reason, t, rank });
            }
        }
    }

    /// Classify a data-channel transmission by power level.
    pub(crate) fn note_data_tx(&mut self, power_mw: f64) {
        match self.levels_mw.iter().position(|&l| l == power_mw) {
            Some(i) => self.data_tx_by_level[i] += 1,
            None => self.data_tx_unclassified += 1,
        }
    }

    /// Count a control-channel broadcast.
    pub(crate) fn note_ctrl_tx(&mut self) {
        self.ctrl_tx += 1;
    }

    /// Record one time-series sample (the probe event handler computes
    /// the instantaneous integer observables; cumulative fields come
    /// from here; fractions are derived at [`MetricsState::finish`]).
    pub(crate) fn record_probe(
        &mut self,
        t: SimTime,
        live_nodes: u64,
        busy_nodes: u64,
        queue_len_sum: u64,
    ) {
        self.hot.probes += 1;
        self.samples.push(RawSample {
            t,
            live: live_nodes,
            busy: busy_nodes,
            queue_sum: queue_len_sum,
            sent_cum: self.sent,
            delivered_cum: self.delivered_cum,
        });
    }

    /// Capture everything the constructor cannot rebuild from the
    /// scenario config into a portable checkpoint image. For sharded
    /// runs the caller merges the per-shard states first, so the image
    /// is the same single-equivalent view either way.
    pub(crate) fn capture(&self) -> MetricsSnap {
        MetricsSnap {
            probes_scheduled: self.probes_scheduled,
            samples: self.samples.clone(),
            sent: self.sent,
            delivered_cum: self.delivered_cum,
            duplicate_deliveries: self.duplicate_deliveries,
            fates: self.fates.clone(),
            phy: self.phy,
            rx_overlap: self.rx_overlap.clone(),
            data_tx_by_level: self.data_tx_by_level.clone(),
            data_tx_unclassified: self.data_tx_unclassified,
            ctrl_tx: self.ctrl_tx,
            hot: self.hot,
        }
    }

    /// Overlay a checkpoint image on a freshly-built state. Exactly one
    /// execution lane restores as `primary` (the single-threaded run, or
    /// region shard 0) and receives the cumulative counters and samples;
    /// the other shards keep zeros so the final [`MetricsState::merge`]
    /// sums back to the uninterrupted totals. Per-packet fates and the
    /// rx-overlap flags replicate everywhere: fate resolution is
    /// idempotent under merge, and each shard needs the full map to
    /// classify post-restore duplicate deliveries the same way an
    /// uninterrupted run would.
    pub(crate) fn restore_from(
        &mut self,
        snap: &MetricsSnap,
        primary: bool,
    ) -> Result<(), &'static str> {
        if snap.rx_overlap.len() != self.rx_overlap.len() {
            return Err("metrics node count");
        }
        if snap.data_tx_by_level.len() != self.data_tx_by_level.len() {
            return Err("metrics power-level count");
        }
        self.probes_scheduled = snap.probes_scheduled;
        self.fates = snap.fates.clone();
        self.rx_overlap = snap.rx_overlap.clone();
        if primary {
            self.samples = snap.samples.clone();
            self.sent = snap.sent;
            self.delivered_cum = snap.delivered_cum;
            self.duplicate_deliveries = snap.duplicate_deliveries;
            self.phy = snap.phy;
            self.data_tx_by_level = snap.data_tx_by_level.clone();
            self.data_tx_unclassified = snap.data_tx_unclassified;
            self.ctrl_tx = snap.ctrl_tx;
            self.hot = snap.hot;
        } else {
            // Zero-valued shadows at the captured instants keep the
            // pairwise sample merge aligned.
            self.samples = snap
                .samples
                .iter()
                .map(|s| RawSample {
                    t: s.t,
                    live: 0,
                    busy: 0,
                    queue_sum: 0,
                    sent_cum: 0,
                    delivered_cum: 0,
                })
                .collect();
        }
        Ok(())
    }

    /// Fold per-region-shard collection states into the global one.
    /// Every integer is either a sum over shards (counters, raw probe
    /// samples — each shard sampled only its own nodes at the same
    /// instants) or a per-packet fate resolution: a delivery anywhere
    /// wins (duplicates sum), else the globally-earliest drop by its
    /// `(time, rank)` key — the one the single-threaded run recorded
    /// first — else the packet is still in flight.
    pub(crate) fn merge(mut parts: Vec<MetricsState>) -> MetricsState {
        let mut base = parts.remove(0);
        for part in parts {
            debug_assert_eq!(base.samples.len(), part.samples.len());
            for (a, b) in base.samples.iter_mut().zip(part.samples) {
                debug_assert_eq!(a.t, b.t);
                a.live += b.live;
                a.busy += b.busy;
                a.queue_sum += b.queue_sum;
                a.sent_cum += b.sent_cum;
                a.delivered_cum += b.delivered_cum;
            }
            base.sent += part.sent;
            base.delivered_cum += part.delivered_cum;
            base.duplicate_deliveries += part.duplicate_deliveries;
            for (id, fate) in part.fates {
                match base.fates.entry(id) {
                    Entry::Vacant(v) => {
                        v.insert(fate);
                    }
                    Entry::Occupied(mut o) => {
                        let merged = match (*o.get(), fate) {
                            (Fate::Delivered, _) | (_, Fate::Delivered) => Fate::Delivered,
                            (
                                Fate::Dropped {
                                    reason: r1,
                                    t: t1,
                                    rank: k1,
                                },
                                Fate::Dropped {
                                    reason: r2,
                                    t: t2,
                                    rank: k2,
                                },
                            ) => {
                                if (t2, k2) < (t1, k1) {
                                    Fate::Dropped {
                                        reason: r2,
                                        t: t2,
                                        rank: k2,
                                    }
                                } else {
                                    Fate::Dropped {
                                        reason: r1,
                                        t: t1,
                                        rank: k1,
                                    }
                                }
                            }
                            (d @ Fate::Dropped { .. }, Fate::InFlight) => d,
                            (Fate::InFlight, d @ Fate::Dropped { .. }) => d,
                            (Fate::InFlight, Fate::InFlight) => Fate::InFlight,
                        };
                        o.insert(merged);
                    }
                }
            }
            base.phy.arrivals += part.phy.arrivals;
            base.phy.decoded_ok += part.phy.decoded_ok;
            base.phy.collided += part.phy.collided;
            base.phy.capture_wins += part.phy.capture_wins;
            base.phy.captured_away += part.phy.captured_away;
            base.phy.below_rx_thresh += part.phy.below_rx_thresh;
            base.phy.missed_while_tx += part.phy.missed_while_tx;
            base.phy.impaired_arrivals += part.phy.impaired_arrivals;
            for (a, b) in base.data_tx_by_level.iter_mut().zip(part.data_tx_by_level) {
                *a += b;
            }
            base.data_tx_unclassified += part.data_tx_unclassified;
            base.ctrl_tx += part.ctrl_tx;
            base.hot.grid_queries += part.hot.grid_queries;
            base.hot.grid_candidates += part.hot.grid_candidates;
            base.hot.refresh_pops += part.hot.refresh_pops;
            base.hot.refresh_rearms += part.hot.refresh_rearms;
            base.hot.exact_samples += part.hot.exact_samples;
            base.hot.probes += part.hot.probes;
        }
        base
    }

    /// Fold the collected state into the serializable report section.
    pub(crate) fn finish(self, nodes: &[Node], cache: Option<SparseCacheStats>) -> SimMetrics {
        let mut drops = DropTaxonomy {
            sent: self.sent,
            duplicate_deliveries: self.duplicate_deliveries,
            ..DropTaxonomy::default()
        };
        for fate in self.fates.values() {
            match fate {
                Fate::InFlight => drops.in_flight_end += 1,
                Fate::Delivered => drops.delivered_unique += 1,
                Fate::Dropped { reason, .. } => match reason {
                    Drop::EmitDead => drops.emit_dead += 1,
                    Drop::MacQueueFull => drops.mac_queue_full += 1,
                    Drop::NoRoute => drops.no_route += 1,
                    Drop::BufferOverflow => drops.buffer_overflow += 1,
                    Drop::BufferTimeout => drops.buffer_timeout += 1,
                    Drop::TtlExpired => drops.ttl_expired += 1,
                },
            }
        }

        let samples: Vec<ProbeSample> = self
            .samples
            .iter()
            .map(|s| ProbeSample {
                t_s: s.t.as_secs_f64(),
                live_nodes: s.live,
                busy_nodes: s.busy,
                busy_fraction: if s.live == 0 {
                    0.0
                } else {
                    s.busy as f64 / s.live as f64
                },
                mean_queue_len: if s.live == 0 {
                    0.0
                } else {
                    s.queue_sum as f64 / s.live as f64
                },
                sent_cum: s.sent_cum,
                delivered_cum: s.delivered_cum,
            })
            .collect();

        let mut mac = MacMetrics {
            rts_sent: 0,
            data_sent: 0,
            cts_timeouts: 0,
            ack_timeouts: 0,
            retry_drops: 0,
            queue_drops: 0,
            rx_errors: 0,
            retx_histogram: vec![0; RETX_BUCKETS],
        };
        let mut routing = RoutingMetrics {
            rreq_originated: 0,
            rreq_forwarded: 0,
            rrep_generated: 0,
            rrep_forwarded: 0,
            rerr_sent: 0,
            discoveries_started: 0,
            discoveries_failed: 0,
            discovery_latency: None,
        };
        let mut latencies = pcmac_stats::StreamingQuantile::new();
        let mut energies: Vec<f64> = Vec::with_capacity(nodes.len());
        for node in nodes {
            let c = &node.mac.counters;
            mac.rts_sent += c.rts_sent;
            mac.data_sent += c.data_sent;
            mac.cts_timeouts += c.cts_timeouts;
            mac.ack_timeouts += c.ack_timeouts;
            mac.retry_drops += c.retry_drops;
            mac.queue_drops += c.queue_drops;
            mac.rx_errors += c.rx_errors;
            for (h, n) in mac.retx_histogram.iter_mut().zip(node.mac.retx_histogram()) {
                *h += n;
            }
            let a = &node.aodv.counters;
            routing.rreq_originated += a.rreq_originated;
            routing.rreq_forwarded += a.rreq_forwarded;
            routing.rrep_generated += a.rrep_generated;
            routing.rrep_forwarded += a.rrep_forwarded;
            routing.rerr_sent += a.rerr_sent;
            routing.discoveries_failed += a.discoveries_failed;
            routing.discoveries_started += node.aodv.discoveries_started();
            latencies.merge(node.aodv.discovery_latency());
            energies.push(node.energy.radiated_mj());
        }
        routing.discovery_latency = LatencySummary::from_streaming(&latencies);

        let energy_max = energies.iter().copied().fold(0.0, f64::max);
        let energy_mean = if energies.is_empty() {
            0.0
        } else {
            energies.iter().sum::<f64>() / energies.len() as f64
        };
        let bucket = if energy_max > 0.0 {
            energy_max / ENERGY_BUCKETS as f64
        } else {
            0.0
        };
        let mut energy_histogram = vec![0u64; ENERGY_BUCKETS];
        for &e in &energies {
            let i = if bucket > 0.0 {
                ((e / bucket) as usize).min(ENERGY_BUCKETS - 1)
            } else {
                0
            };
            energy_histogram[i] += 1;
        }

        let mut hot = self.hot;
        hot.sparse_cache = cache;

        SimMetrics {
            probe_interval_s: self.interval.as_secs_f64(),
            samples,
            drops,
            mac,
            phy: self.phy,
            routing,
            tx_power: TxPowerMetrics {
                levels_mw: self.levels_mw,
                data_tx_by_level: self.data_tx_by_level,
                data_tx_unclassified: self.data_tx_unclassified,
                ctrl_tx: self.ctrl_tx,
                energy_histogram,
                energy_bucket_mj: bucket,
                energy_mean_mj: energy_mean,
                energy_max_mj: energy_max,
            },
            hot_path: hot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_probe_interval_is_one_second() {
        assert_eq!(MetricsConfig::default().probe_interval_s, 1.0);
    }

    /// Drop at a synthetic `(time, rank)` key.
    fn drop_at(m: &mut MetricsState, id: u64, reason: Drop, t_ns: u64) {
        m.note_dropped(PacketId(id), reason, SimTime::from_nanos(t_ns), 0);
    }

    #[test]
    fn fate_map_is_conservation_complete() {
        let mut m = MetricsState::new(MetricsConfig::default(), 2, vec![1.0, 2.0]);
        for id in 0..6u64 {
            m.note_sent(PacketId(id));
        }
        m.note_delivered(PacketId(0));
        m.note_delivered(PacketId(0)); // duplicate
        drop_at(&mut m, 1, Drop::MacQueueFull, 10);
        drop_at(&mut m, 1, Drop::NoRoute, 20); // first reason wins
        drop_at(&mut m, 2, Drop::EmitDead, 30);
        drop_at(&mut m, 3, Drop::TtlExpired, 40);
        m.note_delivered(PacketId(3)); // delivery overrides a drop
        let s = m.finish(&[], None);
        let d = &s.drops;
        assert_eq!(d.sent, 6);
        assert_eq!(d.delivered_unique, 2);
        assert_eq!(d.duplicate_deliveries, 1);
        assert_eq!(d.mac_queue_full, 1);
        assert_eq!(d.no_route, 0);
        assert_eq!(d.emit_dead, 1);
        assert_eq!(d.ttl_expired, 0);
        assert_eq!(d.in_flight_end, 2);
        assert!(d.conserved());
    }

    #[test]
    fn unseen_ids_record_directly_for_shard_merge() {
        // A sink shard delivers (or drops) packets whose emission was
        // registered on the source's shard: the fate records without a
        // prior `note_sent`, and `sent` is untouched.
        let mut m = MetricsState::new(MetricsConfig::default(), 1, vec![]);
        m.note_delivered(PacketId(7));
        drop_at(&mut m, 8, Drop::NoRoute, 5);
        assert_eq!(m.sent, 0);
        assert_eq!(m.delivered_cum, 1);
        let s = m.finish(&[], None);
        assert_eq!(s.drops.delivered_unique, 1);
        assert_eq!(s.drops.no_route, 1);
    }

    #[test]
    fn merge_resolves_fates_and_sums_counters() {
        // Shard A owns the source: registers emissions.
        let mut a = MetricsState::new(MetricsConfig::default(), 1, vec![1.0]);
        for id in 0..4u64 {
            a.note_sent(PacketId(id));
        }
        drop_at(&mut a, 1, Drop::NoRoute, 100); // later drop of a copy
        drop_at(&mut a, 2, Drop::TtlExpired, 50);
        a.note_data_tx(1.0);
        a.record_probe(SimTime::from_nanos(1_000), 2, 1, 3);
        // Shard B owns the sink: sees deliveries and earlier drops.
        let mut b = MetricsState::new(MetricsConfig::default(), 1, vec![1.0]);
        b.note_delivered(PacketId(0));
        b.note_delivered(PacketId(0)); // duplicate
        drop_at(&mut b, 1, Drop::MacQueueFull, 60); // globally first
        b.note_delivered(PacketId(2)); // delivery beats A's drop
        b.note_data_tx(1.0);
        b.record_probe(SimTime::from_nanos(1_000), 1, 1, 2);

        let m = MetricsState::merge(vec![a, b]);
        let s = m.finish(&[], None);
        let d = &s.drops;
        assert_eq!(d.sent, 4);
        assert_eq!(d.delivered_unique, 2);
        assert_eq!(d.duplicate_deliveries, 1);
        assert_eq!(d.mac_queue_full, 1, "earliest (time, rank) drop wins");
        assert_eq!(d.no_route, 0);
        assert_eq!(d.ttl_expired, 0);
        assert_eq!(d.in_flight_end, 1);
        assert!(d.conserved());
        assert_eq!(s.tx_power.data_tx_by_level, vec![2]);
        assert_eq!(s.samples.len(), 1);
        assert_eq!(s.samples[0].live_nodes, 3);
        assert_eq!(s.samples[0].busy_nodes, 2);
        assert!((s.samples[0].mean_queue_len - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn probe_samples_divide_safely() {
        let mut m = MetricsState::new(MetricsConfig::default(), 1, vec![]);
        m.record_probe(SimTime::ZERO + Duration::from_secs_f64(1.0), 0, 0, 0);
        m.record_probe(SimTime::ZERO + Duration::from_secs_f64(2.0), 4, 1, 6);
        let s = m.finish(&[], None);
        assert_eq!(s.samples.len(), 2);
        assert_eq!(s.samples[0].busy_fraction, 0.0);
        assert_eq!(s.samples[1].busy_fraction, 0.25);
        assert_eq!(s.samples[1].mean_queue_len, 1.5);
        assert_eq!(s.hot_path.probes, 2);
    }
}
