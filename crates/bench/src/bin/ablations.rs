//! Ablation campaigns for the design choices DESIGN.md calls out — now
//! driven entirely by the checked-in campaign spec files under
//! `examples/ablation_*.json`. Changing a sweep is a JSON edit, not a
//! Rust edit; a parity test (`crates/campaign/tests/ablation_parity.rs`)
//! proves the JSON path reproduces the old constructor-built sweeps bit
//! for bit.
//!
//! Four sweeps, each on the paper's 50-node scenario at a saturating
//! offered load (spec default 800 kbps, 60 s per run):
//!
//! 1. **safety factor** — the paper's 0.7 redundancy coefficient on the
//!    advertised noise tolerance, swept over {0.5, 0.7, 0.9, 1.0}.
//! 2. **control channel bandwidth** — {100, 250, 500, 1000} kbps (the
//!    paper uses 500).
//! 3. **capture policy** — ns-2's pairwise start-only model vs the
//!    stricter cumulative-SINR model, all four protocols.
//! 4. **handshake arity** — PCMAC with the three-way handshake (paper)
//!    vs keeping the ACK.
//!
//! ```text
//! cargo run -p pcmac-bench --release --bin ablations -- \
//!     [--secs N] [--load L] [--seed S] [--threads N] [--spec-dir DIR]
//! ```
//!
//! Each campaign prints the aggregated per-point table plus the per-run
//! MAC counters the headline metrics cannot carry, and writes its
//! `CAMPAIGN_<name>.json` artifact (the same shape `pcmac-campaign run`
//! emits) to the working directory.

use pcmac_bench::{flag_opt, flag_or, flag_value, sanitize};
use pcmac_campaign::{run_campaign, CampaignSpec};
use pcmac_stats::Table;

const ABLATIONS: [&str; 4] = [
    "ablation_safety_factor",
    "ablation_ctrl_bandwidth",
    "ablation_capture_policy",
    "ablation_handshake",
];

fn fail(msg: String) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec_dir = flag_value(&args, "--spec-dir")
        .unwrap_or("examples")
        .to_string();
    let secs: Option<f64> = flag_opt(&args, "--secs");
    let load: Option<f64> = flag_opt(&args, "--load");
    let seed: Option<u64> = flag_opt(&args, "--seed");
    let threads: usize = flag_or(&args, "--threads", 0);

    for name in ABLATIONS {
        let path = format!("{spec_dir}/{name}.json");
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            fail(format!(
                "cannot read {path}: {e} (run from the repository root, or pass --spec-dir)"
            ))
        });
        let mut spec =
            CampaignSpec::from_json(&text).unwrap_or_else(|e| fail(format!("{path}: {e}")));
        if let Some(s) = secs {
            spec.duration_s = Some(s);
        }
        if let Some(l) = load {
            spec.base.traffic.offered_load_kbps = l;
        }
        if let Some(s) = seed {
            spec.seeds = vec![s];
        }

        println!(
            "== {} ({} points x {} seed(s), {:.0} s, {:.0} kbps offered) ==\n",
            spec.name,
            spec.point_count(),
            spec.seeds.len(),
            spec.duration_s.unwrap_or(spec.base.duration_s),
            spec.base.traffic.offered_load_kbps,
        );
        let outcome = run_campaign(&spec, threads).unwrap_or_else(|e| {
            fail(format!(
                "{path} is invalid:\n  - {}",
                e.problems.join("\n  - ")
            ))
        });
        println!("{}", outcome.report.render_table());

        // Per-run MAC counters behind each ablation's argument: control
        // traffic, ACK timeouts, implicit retransmissions, decode errors.
        let mut t = Table::new(&[
            "point",
            "seed",
            "thpt kbps",
            "delay ms",
            "pdr %",
            "ctrlDef",
            "ctrlBcast",
            "ackT/O",
            "implRetx",
            "rxErr",
        ]);
        for (point, chunk) in outcome
            .report
            .points
            .iter()
            .zip(outcome.runs.chunks(spec.seeds.len().max(1)))
        {
            for (seed, r) in point.seeds.iter().zip(chunk) {
                t.row(&[
                    point.key.label(),
                    format!("{seed}"),
                    format!("{:.1}", r.throughput_kbps),
                    format!("{:.1}", r.mean_delay_ms),
                    format!("{:.1}", r.pdr() * 100.0),
                    format!("{}", r.mac.ctrl_deferrals),
                    format!("{}", r.mac.ctrl_broadcasts),
                    format!("{}", r.mac.ack_timeouts),
                    format!("{}", r.mac.implicit_retx),
                    format!("{}", r.mac.rx_errors),
                ]);
            }
        }
        println!("{}", t.render());

        let out = format!("CAMPAIGN_{}.json", sanitize(&spec.name));
        std::fs::write(&out, outcome.report.to_json())
            .unwrap_or_else(|e| fail(format!("cannot write {out}: {e}")));
        eprintln!("wrote {out}\n");
    }
}
