//! # pcmac-mobility — node movement models
//!
//! The paper's scenario moves 50 nodes by **random waypoint** over a
//! 1000 m × 1000 m field at 3 m/s with a 3 s pause ("when the terminal
//! reaches its destination, it pauses for 3 seconds, then randomly
//! chooses another destination point").
//!
//! [`Mobility`] answers "where is this node at time t". The random
//! waypoint model advances its legs lazily: queries must be
//! non-decreasing in time, which a discrete-event simulation guarantees.
//! Lazy legs mean the trajectory is a pure function of the node's RNG
//! stream — runs with the same seed walk the same paths regardless of how
//! often positions are sampled.
//!
//! [`placement`] builds initial layouts: the paper's uniform scatter plus
//! deterministic chains/grids/pairs used by tests and the asymmetric-link
//! scenario reproduction.

pub mod placement;

use pcmac_engine::{Duration, Point, RngStream, SimTime};

/// A node's movement over time.
#[derive(Debug, Clone)]
pub enum Mobility {
    /// Never moves.
    Static(Point),
    /// Random waypoint over a rectangular field.
    Waypoint(RandomWaypoint),
}

impl Mobility {
    /// Position at `now`. Queries must be non-decreasing in time for
    /// waypoint nodes.
    pub fn position(&mut self, now: SimTime) -> Point {
        match self {
            Mobility::Static(p) => *p,
            Mobility::Waypoint(w) => w.position(now),
        }
    }

    /// `true` if the node can move (affects how often the core refreshes
    /// cached positions).
    pub fn is_mobile(&self) -> bool {
        matches!(self, Mobility::Waypoint(_))
    }

    /// See [`RandomWaypoint::stale_after`]; static nodes never go stale.
    pub fn stale_after(&self, now: SimTime, pad: f64) -> SimTime {
        match self {
            Mobility::Static(_) => SimTime::MAX,
            Mobility::Waypoint(w) => w.stale_after(now, pad),
        }
    }
}

/// The random waypoint model.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    rng: RngStream,
    width: f64,
    height: f64,
    speed: f64,
    pause: Duration,
    /// Current leg: travel `from → to` over `[leg_start, leg_end]`, then
    /// pause until `pause_end`.
    from: Point,
    to: Point,
    leg_start: SimTime,
    leg_end: SimTime,
    pause_end: SimTime,
}

impl RandomWaypoint {
    /// Start at `start`, walking the `width × height` field at `speed` m/s
    /// with `pause` between legs. `rng` owns the waypoint draws.
    pub fn new(
        start: Point,
        width: f64,
        height: f64,
        speed: f64,
        pause: Duration,
        mut rng: RngStream,
    ) -> Self {
        assert!(speed > 0.0 && width > 0.0 && height > 0.0);
        let to = Point::new(rng.uniform(0.0, width), rng.uniform(0.0, height));
        let travel = Duration::from_secs_f64(start.distance(to) / speed);
        let leg_end = SimTime::ZERO + travel;
        RandomWaypoint {
            rng,
            width,
            height,
            speed,
            pause,
            from: start,
            to,
            leg_start: SimTime::ZERO,
            leg_end,
            pause_end: leg_end + pause,
        }
    }

    /// The paper's parameters: 1000 m × 1000 m, 3 m/s, 3 s pause.
    pub fn paper_default(start: Point, rng: RngStream) -> Self {
        RandomWaypoint::new(start, 1000.0, 1000.0, 3.0, Duration::from_secs(3), rng)
    }

    /// Position at `now` (non-decreasing queries).
    pub fn position(&mut self, now: SimTime) -> Point {
        while now >= self.pause_end {
            self.advance_leg();
        }
        if now >= self.leg_end {
            // Pausing at the waypoint.
            return self.to;
        }
        let leg = self.leg_end.saturating_since(self.leg_start).as_secs_f64();
        if leg == 0.0 {
            return self.to;
        }
        let t = now.saturating_since(self.leg_start).as_secs_f64() / leg;
        self.from.lerp(self.to, t)
    }

    /// The earliest instant at which this node's position *could* have
    /// drifted `pad` metres away from where it stands at `now` — the
    /// node's refresh deadline for a spatial index that tolerates `pad`
    /// metres of staleness. Until the returned instant (exclusive), the
    /// position at any queried time is guaranteed within `pad` of the
    /// position at `now`.
    ///
    /// The bound is `now + pad/speed` (speed is an upper bound on
    /// displacement rate) and is valid for any leg state; when the model
    /// has been advanced to `now` (i.e. right after `position(now)`) and
    /// the node is pausing at a waypoint, the horizon extends to
    /// `pause_end + pad/speed` since no movement happens before the
    /// pause ends. The drift interval rounds *down* to whole
    /// nanoseconds, so the guarantee is never overestimated.
    pub fn stale_after(&self, now: SimTime, pad: f64) -> SimTime {
        debug_assert!(pad > 0.0 && pad.is_finite());
        let drift_ns = (pad / self.speed * 1e9).floor().clamp(0.0, u64::MAX as f64) as u64;
        let base = if now >= self.leg_end && now < self.pause_end {
            // Pausing at the waypoint: guaranteed still until pause_end.
            self.pause_end
        } else {
            now
        };
        SimTime::from_nanos(base.as_nanos().saturating_add(drift_ns))
    }

    fn advance_leg(&mut self) {
        self.from = self.to;
        self.to = Point::new(
            self.rng.uniform(0.0, self.width),
            self.rng.uniform(0.0, self.height),
        );
        self.leg_start = self.pause_end;
        let travel = Duration::from_secs_f64(self.from.distance(self.to) / self.speed);
        self.leg_end = self.leg_start + travel;
        self.pause_end = self.leg_end + self.pause;
    }
}

mod snap {
    //! Checkpoint capture of mobility. The waypoint model is a pure
    //! function of its RNG stream and current leg, so capturing both
    //! makes the restored trajectory identical for all queries at or
    //! after the cut time.

    use super::{Mobility, RandomWaypoint};
    use pcmac_snap::{Snap, SnapError, SnapReader, SnapWriter};

    pcmac_snap::snap_struct!(RandomWaypoint {
        rng,
        width,
        height,
        speed,
        pause,
        from,
        to,
        leg_start,
        leg_end,
        pause_end,
    });

    impl Snap for Mobility {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                Mobility::Static(p) => {
                    w.u8(0);
                    p.save(w);
                }
                Mobility::Waypoint(m) => {
                    w.u8(1);
                    m.save(w);
                }
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(Mobility::Static(Snap::load(r)?)),
                1 => Ok(Mobility::Waypoint(Snap::load(r)?)),
                _ => Err(SnapError::Corrupt("mobility tag")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(i: u64) -> RngStream {
        RngStream::derive_sub(99, "mobility-test", i)
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn static_nodes_do_not_move() {
        let mut m = Mobility::Static(Point::new(10.0, 20.0));
        assert_eq!(m.position(t(0.0)), Point::new(10.0, 20.0));
        assert_eq!(m.position(t(400.0)), Point::new(10.0, 20.0));
        assert!(!m.is_mobile());
    }

    #[test]
    fn waypoint_stays_in_bounds() {
        let mut w = RandomWaypoint::paper_default(Point::new(500.0, 500.0), rng(1));
        for i in 0..4000 {
            let p = w.position(t(i as f64 * 0.25));
            assert!((0.0..=1000.0).contains(&p.x), "x={} at step {i}", p.x);
            assert!((0.0..=1000.0).contains(&p.y), "y={} at step {i}", p.y);
        }
    }

    #[test]
    fn speed_never_exceeds_configured() {
        let mut w = RandomWaypoint::paper_default(Point::new(100.0, 100.0), rng(2));
        let dt = 0.5;
        let mut last = w.position(t(0.0));
        for i in 1..2000 {
            let p = w.position(t(i as f64 * dt));
            let v = last.distance(p) / dt;
            assert!(v <= 3.0 + 1e-6, "speed {v} m/s at step {i}");
            last = p;
        }
    }

    #[test]
    fn node_actually_travels() {
        let mut w = RandomWaypoint::paper_default(Point::new(0.0, 0.0), rng(3));
        let start = w.position(t(0.0));
        let later = w.position(t(120.0));
        assert!(start.distance(later) > 1.0, "node should have moved");
    }

    #[test]
    fn pauses_at_waypoints() {
        // Directly observe a pause: position at leg_end equals position at
        // leg_end + pause (modulo the next leg not starting early).
        let mut w = RandomWaypoint::new(
            Point::new(0.0, 0.0),
            100.0,
            100.0,
            10.0,
            Duration::from_secs(3),
            rng(4),
        );
        let leg_end = w.leg_end;
        let at_arrival = w.position(leg_end);
        let mid_pause = w.position(leg_end + Duration::from_millis(1500));
        assert_eq!(at_arrival, mid_pause, "no movement during the pause");
    }

    #[test]
    fn same_seed_same_trajectory() {
        let mut a = RandomWaypoint::paper_default(Point::new(7.0, 7.0), rng(5));
        let mut b = RandomWaypoint::paper_default(Point::new(7.0, 7.0), rng(5));
        for i in 0..500 {
            // Different sampling patterns, same instants where compared.
            let ta = t(i as f64 * 0.9);
            assert_eq!(a.position(ta), b.position(ta));
        }
    }

    #[test]
    fn static_nodes_never_go_stale() {
        let m = Mobility::Static(Point::new(1.0, 2.0));
        assert_eq!(m.stale_after(t(5.0), 10.0), SimTime::MAX);
    }

    #[test]
    fn stale_horizon_is_at_least_pad_over_speed() {
        let mut w = RandomWaypoint::paper_default(Point::new(500.0, 500.0), rng(8));
        for i in 0..200 {
            let now = t(i as f64 * 1.7);
            let _ = w.position(now);
            let h = w.stale_after(now, 12.0);
            // 3 m/s ⇒ 12 m of drift takes at least 4 s.
            assert!(h >= now + Duration::from_secs(4), "step {i}");
        }
    }

    #[test]
    fn stale_horizon_extends_through_pauses() {
        let mut w = RandomWaypoint::new(
            Point::new(0.0, 0.0),
            100.0,
            100.0,
            10.0,
            Duration::from_secs(3),
            rng(9),
        );
        let leg_end = w.leg_end;
        let _ = w.position(leg_end);
        // Mid-pause: the node cannot drift before pause_end, so the
        // horizon covers the remaining pause plus pad/speed.
        let h = w.stale_after(leg_end, 5.0);
        assert_eq!(h, w.pause_end + Duration::from_millis(500));
    }

    #[test]
    fn sampling_rate_does_not_change_trajectory() {
        let mut dense = RandomWaypoint::paper_default(Point::new(3.0, 3.0), rng(6));
        let mut sparse = RandomWaypoint::paper_default(Point::new(3.0, 3.0), rng(6));
        let mut dense_samples = Vec::new();
        for i in 0..1000 {
            let p = dense.position(t(i as f64 * 0.1));
            if i % 10 == 0 {
                dense_samples.push(p);
            }
        }
        for (k, want) in dense_samples.iter().enumerate() {
            let got = sparse.position(t(k as f64));
            assert!(
                want.distance(got) < 1e-9,
                "trajectory diverged at t={k}s: {want:?} vs {got:?}"
            );
        }
    }
}
