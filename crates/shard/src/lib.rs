//! Region partitioning and synchronization primitives for the
//! spatial-domain parallel execution engine.
//!
//! A sharded run splits the field into vertical column bands — one per
//! worker thread — and advances them in lockstep *windows* under a
//! conservative synchronization protocol: within a window no shard may
//! process an event at or past `window_start + lookahead`, where the
//! lookahead is the minimum cross-region propagation delay, so nothing a
//! neighbour transmits inside the window can affect events the local
//! shard already dispatched. The pieces here are deliberately tiny and
//! domain-free: a greedy balanced column partition and a spinning
//! generation barrier. Everything that knows about radios and queues
//! lives in the core crate's `parallel` module.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Node-count-balanced partition of grid columns into contiguous bands.
///
/// `xs` are the node x-coordinates at t = 0, `width` the field width,
/// `cell` the spatial-index cell size, and `shards` the band count.
/// Returns the owning shard per node. Bands are contiguous column
/// ranges, so a region boundary always coincides with a grid-cell
/// boundary and the band of a node is a pure function of its start
/// position — every shard computes the identical map independently.
///
/// The split is greedy: walking columns left to right, a band closes
/// once it holds its proportional share of nodes (`(s + 1) * n / shards`
/// cumulative). Degenerate layouts (all nodes in one column) yield empty
/// bands, which is correct if wasteful — the protocol never requires a
/// band to be non-empty.
pub fn partition_columns(xs: &[f64], width: f64, cell: f64, shards: usize) -> Vec<u32> {
    assert!(shards >= 1, "at least one shard");
    assert!(cell > 0.0 && width > 0.0, "positive field geometry");
    let cols = ((width / cell).ceil() as usize).max(1);
    let col_of = |x: f64| (((x / cell) as isize).clamp(0, cols as isize - 1)) as usize;

    let mut count = vec![0u64; cols];
    for &x in xs {
        count[col_of(x)] += 1;
    }
    // Shard owning each column, by greedy cumulative accumulation.
    let n = xs.len() as u64;
    let mut col_shard = vec![0u32; cols];
    let mut acc = 0u64;
    let mut s = 0usize;
    for (c, &k) in count.iter().enumerate() {
        col_shard[c] = s as u32;
        acc += k;
        // Close the band once it reached its cumulative share; the last
        // band absorbs the remainder.
        while s + 1 < shards && acc * shards as u64 >= (s as u64 + 1) * n && n > 0 {
            s += 1;
        }
    }
    xs.iter().map(|&x| col_shard[col_of(x)]).collect()
}

/// A spinning generation barrier for a fixed crew of threads.
///
/// Threads call [`SpinBarrier::wait`]; the last arrival resets the count
/// and releases the crew by bumping the generation. Spinning (with
/// `yield_now`) instead of parking keeps the per-window cost at a few
/// hundred nanoseconds — a sharded simulation crosses the barrier
/// millions of times, so futex round-trips would dominate the run.
#[derive(Debug)]
pub struct SpinBarrier {
    crew: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier releasing once `crew` threads arrive.
    pub fn new(crew: usize) -> Self {
        assert!(crew >= 1, "a barrier needs a crew");
        SpinBarrier {
            crew,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Block (spinning) until every crew member has arrived. Returns
    /// `true` on exactly one thread per crossing (the "leader", the last
    /// to arrive), mirroring `std::sync::Barrier`.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::SeqCst);
        if self.arrived.fetch_add(1, Ordering::SeqCst) + 1 == self.crew {
            // Last arrival: reset the count for the next crossing, then
            // open the gate. The order matters — the count must be clean
            // before any spinner can race into the next crossing.
            self.arrived.store(0, Ordering::SeqCst);
            self.generation.fetch_add(1, Ordering::SeqCst);
            true
        } else {
            while self.generation.load(Ordering::SeqCst) == gen {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn partition_is_balanced_and_contiguous() {
        // 100 nodes spread evenly over 10 columns.
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 10.0 + 5.0).collect();
        let owner = partition_columns(&xs, 1000.0, 100.0, 4);
        assert_eq!(owner.len(), 100);
        // Owners are non-decreasing in x (contiguous bands).
        let mut sorted: Vec<(f64, u32)> = xs.iter().copied().zip(owner.iter().copied()).collect();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert!(sorted.windows(2).all(|w| w[0].1 <= w[1].1));
        // Every shard owns a reasonable share.
        for s in 0..4u32 {
            let k = owner.iter().filter(|&&o| o == s).count();
            assert!(k >= 10, "shard {s} owns {k} of 100");
        }
    }

    #[test]
    fn partition_single_shard_owns_everything() {
        let xs = vec![1.0, 250.0, 999.0];
        assert_eq!(partition_columns(&xs, 1000.0, 50.0, 1), vec![0, 0, 0]);
    }

    #[test]
    fn partition_tolerates_degenerate_layouts() {
        // All nodes in one column: one band gets them all, the rest are
        // empty; out-of-range coordinates clamp instead of panicking.
        let xs = vec![5.0; 7];
        let owner = partition_columns(&xs, 1000.0, 100.0, 3);
        assert!(owner.iter().all(|&o| o == owner[0]));
        let owner = partition_columns(&[-3.0, 1e6], 100.0, 10.0, 2);
        assert_eq!(owner.len(), 2);
    }

    #[test]
    fn partition_is_deterministic() {
        let xs: Vec<f64> = (0..57).map(|i| (i * 37 % 100) as f64 * 7.3).collect();
        let a = partition_columns(&xs, 800.0, 40.0, 8);
        let b = partition_columns(&xs, 800.0, 40.0, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn barrier_releases_crew_and_elects_one_leader() {
        let crew = 4;
        let barrier = Arc::new(SpinBarrier::new(crew));
        let leaders = Arc::new(AtomicU64::new(0));
        let counter = Arc::new(AtomicU64::new(0));
        let rounds = 200;
        let handles: Vec<_> = (0..crew)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for round in 0..rounds {
                        counter.fetch_add(1, Ordering::SeqCst);
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                        // Everyone must observe the full crew's work for
                        // this round after the crossing.
                        assert!(
                            counter.load(Ordering::SeqCst) >= ((round + 1) * crew) as u64,
                            "barrier released early"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), rounds as u64);
        assert_eq!(counter.load(Ordering::SeqCst), (rounds * crew) as u64);
    }
}
