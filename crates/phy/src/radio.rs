//! Per-node radio reception state machine.
//!
//! Each node owns one `Radio` per channel (PCMAC adds a second, the power
//! control channel). The radio tracks **every** transmission arriving at
//! the node — not just decodable ones — because interference is cumulative:
//! several individually-harmless interferers can jointly corrupt a locked
//! frame. This is precisely the failure mode PCMAC's noise-tolerance
//! broadcasts guard against (hence the paper's 0.7 safety factor for
//! "other terminals also wanting to transmit at the same time").
//!
//! ## Reception rules
//!
//! * The radio locks onto an arrival iff it is currently idle (not
//!   transmitting, not already locked) and the arrival's power is at least
//!   the decode threshold `rx_thresh`. There is no re-locking onto a
//!   stronger later frame (matches ns-2).
//! * A locked frame is *corrupted* when its SINR — locked power over noise
//!   floor plus the sum of all other in-air power — drops below the capture
//!   ratio (ns-2's `CPThresh`, 10). Under [`CapturePolicy::Continuous`]
//!   (default) this is evaluated at lock time and whenever a new arrival
//!   starts; under [`CapturePolicy::StartOnly`] the radio reproduces ns-2's
//!   weaker pairwise check (locked/new ≥ ratio) — kept as an ablation.
//! * Transmitting is half-duplex: starting a transmission aborts any
//!   reception in progress, and arrivals during transmission are
//!   interference only.
//! * The channel is *busy* (physical carrier sense) while transmitting,
//!   receiving, or whenever total in-air power reaches the carrier-sense
//!   threshold `cs_thresh`. Busy/idle **edges** are reported as events so
//!   the MAC can freeze and resume backoff.

use pcmac_engine::{Milliwatts, SimTime};
use serde::{Deserialize, Serialize};

/// When the SINR of a locked frame is (re-)evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapturePolicy {
    /// ns-2 compatible: pairwise locked/new power ratio on each new arrival.
    StartOnly,
    /// Cumulative SINR against all concurrent interference (default).
    Continuous,
}

/// Radio configuration. Defaults reproduce ns-2's Lucent WaveLAN card.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RadioConfig {
    /// Minimum power to decode a frame (ns-2 `RXThresh`): 3.652e-10 W.
    pub rx_thresh: Milliwatts,
    /// Minimum power to sense the channel busy (ns-2 `CSThresh`): 1.559e-11 W.
    pub cs_thresh: Milliwatts,
    /// Linear SINR required for successful decode (ns-2 `CPThresh`): 10.
    pub capture_ratio: f64,
    /// Receiver noise floor; well below `cs_thresh` so it never triggers
    /// carrier sense but keeps SINR finite in a quiet channel.
    pub noise_floor: Milliwatts,
    /// SINR evaluation policy.
    pub capture_policy: CapturePolicy,
}

impl RadioConfig {
    /// The ns-2 / paper configuration.
    pub fn ns2_default() -> Self {
        RadioConfig {
            rx_thresh: Milliwatts(3.652e-7),
            cs_thresh: Milliwatts(1.559e-8),
            capture_ratio: 10.0,
            noise_floor: Milliwatts(1.0e-9),
            capture_policy: CapturePolicy::Continuous,
        }
    }
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig::ns2_default()
    }
}

/// Indications from the radio to the MAC.
#[derive(Debug, Clone, PartialEq)]
pub enum RadioEvent<F> {
    /// Physical carrier sense went idle → busy.
    CarrierBusy,
    /// Physical carrier sense went busy → idle.
    CarrierIdle,
    /// The radio locked onto an arriving frame. The frame content is
    /// header-level information; a MAC may only use it for decisions the
    /// real hardware could make from a decoded PLCP/MAC header (e.g.
    /// PCMAC's "I have started receiving DATA addressed to me" broadcast).
    /// Whether the frame survives is only known at [`RadioEvent::RxEnd`].
    RxStart {
        /// Transmission key (matches the later `RxEnd`).
        key: u64,
        /// Received signal power.
        power: Milliwatts,
        /// The arriving frame (clone of the transmitted one).
        frame: F,
    },
    /// A locked frame finished arriving.
    RxEnd {
        /// Transmission key (matches the earlier `RxStart`).
        key: u64,
        /// Received signal power.
        power: Milliwatts,
        /// The frame.
        frame: F,
        /// `true` if decodable (never fell below capture SINR); `false`
        /// means the MAC heard garbage and must defer EIFS.
        ok: bool,
    },
}

/// One transmission currently arriving at this node.
#[derive(Debug, Clone)]
struct Arrival {
    key: u64,
    power: Milliwatts,
    /// Kept for diagnostics; removal is keyed, not time-driven.
    #[allow(dead_code)]
    end: SimTime,
}

#[derive(Debug, Clone)]
enum Lock<F> {
    Idle,
    Rx {
        key: u64,
        power: Milliwatts,
        frame: F,
        corrupted: bool,
    },
    Tx {
        /// When the transmission ends (diagnostics; the MAC drives `end_tx`).
        #[allow(dead_code)]
        until: SimTime,
    },
}

/// The per-node, per-channel radio.
#[derive(Debug, Clone)]
pub struct Radio<F> {
    cfg: RadioConfig,
    lock: Lock<F>,
    arrivals: Vec<Arrival>,
    /// Sum of the power of all arrivals (including a locked frame).
    total_in_air: Milliwatts,
    /// Last carrier state reported to the MAC.
    reported_busy: bool,
}

impl<F: Clone> Radio<F> {
    /// A fresh idle radio.
    pub fn new(cfg: RadioConfig) -> Self {
        Radio {
            cfg,
            lock: Lock::Idle,
            arrivals: Vec::with_capacity(8),
            total_in_air: Milliwatts::ZERO,
            reported_busy: false,
        }
    }

    /// The radio's configuration.
    pub fn config(&self) -> &RadioConfig {
        &self.cfg
    }

    /// Replace the receiver noise floor (transient channel impairments).
    ///
    /// Affects SINR and [`Radio::noise_power`] from the next evaluation
    /// on; already-locked frames keep the corruption verdicts reached so
    /// far. The floor stays below any sane carrier-sense threshold, so
    /// no busy/idle edge can result and no event vector is needed.
    pub fn set_noise_floor(&mut self, floor: Milliwatts) {
        debug_assert!(floor.is_valid());
        self.cfg.noise_floor = floor;
    }

    /// `true` while a transmission of ours is on the air.
    pub fn is_transmitting(&self) -> bool {
        matches!(self.lock, Lock::Tx { .. })
    }

    /// `true` while locked onto an arriving frame.
    pub fn is_receiving(&self) -> bool {
        matches!(self.lock, Lock::Rx { .. })
    }

    /// Physical carrier sense: busy while transmitting, receiving, or when
    /// total in-air power reaches the carrier-sense threshold.
    pub fn carrier_busy(&self) -> bool {
        !matches!(self.lock, Lock::Idle) || self.total_in_air.value() >= self.cfg.cs_thresh.value()
    }

    /// Noise-plus-interference observed by this node, excluding the locked
    /// frame's own power. This is the `N_r` of the paper's tolerance
    /// computation.
    pub fn noise_power(&self) -> Milliwatts {
        let locked = match &self.lock {
            Lock::Rx { power, .. } => *power,
            _ => Milliwatts::ZERO,
        };
        (self.cfg.noise_floor + self.total_in_air - locked).clamp_non_negative()
    }

    /// Total in-air power (diagnostics).
    pub fn in_air_power(&self) -> Milliwatts {
        self.total_in_air
    }

    /// A transmission begins arriving at this node.
    ///
    /// `key` must be unique per transmission; `power` is the received (post
    /// path-loss) power; `end` is when the arrival finishes. Indications
    /// are appended to `out`.
    pub fn on_arrival_start(
        &mut self,
        key: u64,
        power: Milliwatts,
        end: SimTime,
        frame: &F,
        out: &mut Vec<RadioEvent<F>>,
    ) {
        debug_assert!(power.is_valid());
        self.arrivals.push(Arrival { key, power, end });
        self.total_in_air += power;
        // Report the busy edge before any RxStart so the MAC already sees
        // the channel as busy when it learns a frame is arriving.
        self.emit_carrier_edge(out);

        match &mut self.lock {
            Lock::Idle => {
                if power.value() >= self.cfg.rx_thresh.value() {
                    // Lock on. Initial SINR check against everything else
                    // already in the air (both policies check at lock).
                    let interference =
                        (self.cfg.noise_floor + self.total_in_air - power).clamp_non_negative();
                    let corrupted = power.ratio(interference) < self.cfg.capture_ratio;
                    self.lock = Lock::Rx {
                        key,
                        power,
                        frame: frame.clone(),
                        corrupted,
                    };
                    out.push(RadioEvent::RxStart {
                        key,
                        power,
                        frame: frame.clone(),
                    });
                }
                // Below rx_thresh: interference / carrier sense only.
            }
            Lock::Rx {
                power: locked_power,
                corrupted,
                ..
            } => {
                // Existing reception: the newcomer can corrupt it.
                let survives = match self.cfg.capture_policy {
                    CapturePolicy::StartOnly => {
                        // ns-2: pairwise capture check against the newcomer.
                        locked_power.ratio(power) >= self.cfg.capture_ratio
                    }
                    CapturePolicy::Continuous => {
                        let interference = (self.cfg.noise_floor + self.total_in_air
                            - *locked_power)
                            .clamp_non_negative();
                        locked_power.ratio(interference) >= self.cfg.capture_ratio
                    }
                };
                if !survives {
                    *corrupted = true;
                }
            }
            Lock::Tx { .. } => {
                // Half-duplex: we cannot hear anything while transmitting.
            }
        }
        // Locking cannot change the busy verdict (a decodable arrival is
        // already above cs_thresh), but keep the edge detector consistent.
        self.emit_carrier_edge(out);
    }

    /// A transmission finishes arriving at this node.
    pub fn on_arrival_end(&mut self, key: u64, out: &mut Vec<RadioEvent<F>>) {
        let Some(idx) = self.arrivals.iter().position(|a| a.key == key) else {
            debug_assert!(false, "arrival end for unknown key {key}");
            return;
        };
        let arrival = self.arrivals.swap_remove(idx);
        self.total_in_air = (self.total_in_air - arrival.power).clamp_non_negative();
        if self.arrivals.is_empty() {
            // Squash float dust so a quiet channel reads exactly zero.
            self.total_in_air = Milliwatts::ZERO;
        }

        if let Lock::Rx {
            key: locked_key,
            power,
            corrupted,
            ..
        } = &self.lock
        {
            if *locked_key == key {
                let (power, ok) = (*power, !*corrupted);
                let Lock::Rx { frame, .. } = std::mem::replace(&mut self.lock, Lock::Idle) else {
                    unreachable!()
                };
                out.push(RadioEvent::RxEnd {
                    key,
                    power,
                    frame,
                    ok,
                });
            }
        }
        self.emit_carrier_edge(out);
    }

    /// Begin transmitting until `until`. Any reception in progress is
    /// aborted (its frame is lost; the arrival remains as interference for
    /// other bookkeeping but can no longer be delivered).
    pub fn start_tx(&mut self, until: SimTime, out: &mut Vec<RadioEvent<F>>) {
        debug_assert!(
            !self.is_transmitting(),
            "start_tx while already transmitting"
        );
        self.lock = Lock::Tx { until };
        self.emit_carrier_edge(out);
    }

    /// Our transmission ended. The radio returns to idle; ongoing arrivals
    /// stay undecodable (we missed their beginnings) but keep contributing
    /// interference and carrier sense.
    pub fn end_tx(&mut self, out: &mut Vec<RadioEvent<F>>) {
        debug_assert!(self.is_transmitting(), "end_tx while not transmitting");
        self.lock = Lock::Idle;
        self.emit_carrier_edge(out);
    }

    fn emit_carrier_edge(&mut self, out: &mut Vec<RadioEvent<F>>) {
        let busy = self.carrier_busy();
        if busy != self.reported_busy {
            self.reported_busy = busy;
            out.push(if busy {
                RadioEvent::CarrierBusy
            } else {
                RadioEvent::CarrierIdle
            });
        }
    }
}

mod snap {
    //! Checkpoint capture of the radio state machine: the lock, every
    //! in-flight arrival, the interference sum, and the carrier edge
    //! detector travel bit-exactly.

    use super::{Arrival, CapturePolicy, Lock, Radio, RadioConfig};
    use pcmac_snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for CapturePolicy {
        fn save(&self, w: &mut SnapWriter) {
            w.u8(match self {
                CapturePolicy::StartOnly => 0,
                CapturePolicy::Continuous => 1,
            });
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(CapturePolicy::StartOnly),
                1 => Ok(CapturePolicy::Continuous),
                _ => Err(SnapError::Corrupt("capture policy tag")),
            }
        }
    }

    pcmac_snap::snap_struct!(RadioConfig {
        rx_thresh,
        cs_thresh,
        capture_ratio,
        noise_floor,
        capture_policy,
    });

    pcmac_snap::snap_struct!(Arrival { key, power, end });

    impl<F: Snap> Snap for Lock<F> {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                Lock::Idle => w.u8(0),
                Lock::Rx {
                    key,
                    power,
                    frame,
                    corrupted,
                } => {
                    w.u8(1);
                    key.save(w);
                    power.save(w);
                    frame.save(w);
                    corrupted.save(w);
                }
                Lock::Tx { until } => {
                    w.u8(2);
                    until.save(w);
                }
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(Lock::Idle),
                1 => Ok(Lock::Rx {
                    key: Snap::load(r)?,
                    power: Snap::load(r)?,
                    frame: Snap::load(r)?,
                    corrupted: Snap::load(r)?,
                }),
                2 => Ok(Lock::Tx {
                    until: Snap::load(r)?,
                }),
                _ => Err(SnapError::Corrupt("radio lock tag")),
            }
        }
    }

    impl<F: Snap> Snap for Radio<F> {
        fn save(&self, w: &mut SnapWriter) {
            self.cfg.save(w);
            self.lock.save(w);
            self.arrivals.save(w);
            self.total_in_air.save(w);
            self.reported_busy.save(w);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Radio {
                cfg: Snap::load(r)?,
                lock: Snap::load(r)?,
                arrivals: Snap::load(r)?,
                total_in_air: Snap::load(r)?,
                reported_busy: Snap::load(r)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmac_engine::Duration;

    fn radio() -> Radio<&'static str> {
        Radio::new(RadioConfig::ns2_default())
    }

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Duration::from_micros(us)
    }

    const STRONG: Milliwatts = Milliwatts(1e-3); // comfortably decodable
    const MID: Milliwatts = Milliwatts(1e-5); // decodable
    const SENSE_ONLY: Milliwatts = Milliwatts(1e-7); // below rx, above cs
    const FAINT: Milliwatts = Milliwatts(1e-9); // below cs

    #[test]
    fn clean_reception_delivers_ok() {
        let mut r = radio();
        let mut out = Vec::new();
        r.on_arrival_start(1, STRONG, t(100), &"hello", &mut out);
        assert!(matches!(out[0], RadioEvent::CarrierBusy));
        assert!(matches!(
            out[1],
            RadioEvent::RxStart {
                key: 1,
                frame: "hello",
                ..
            }
        ));
        out.clear();
        r.on_arrival_end(1, &mut out);
        assert!(matches!(
            out[0],
            RadioEvent::RxEnd {
                key: 1,
                frame: "hello",
                ok: true,
                ..
            }
        ));
        assert!(matches!(out[1], RadioEvent::CarrierIdle));
        assert!(!r.carrier_busy());
    }

    #[test]
    fn carrier_edge_order_is_busy_before_rxstart() {
        // The MAC must already consider the channel busy when it learns a
        // frame is arriving.
        let mut r = radio();
        let mut out = Vec::new();
        r.on_arrival_start(1, STRONG, t(100), &"x", &mut out);
        assert!(matches!(out[0], RadioEvent::CarrierBusy));
    }

    #[test]
    fn sense_only_arrival_sets_busy_but_no_rx() {
        let mut r = radio();
        let mut out = Vec::new();
        r.on_arrival_start(1, SENSE_ONLY, t(100), &"x", &mut out);
        assert_eq!(out, vec![RadioEvent::CarrierBusy]);
        assert!(!r.is_receiving());
        out.clear();
        r.on_arrival_end(1, &mut out);
        assert_eq!(out, vec![RadioEvent::CarrierIdle]);
    }

    #[test]
    fn faint_arrival_is_invisible_to_carrier_sense() {
        let mut r = radio();
        let mut out = Vec::new();
        r.on_arrival_start(1, FAINT, t(100), &"x", &mut out);
        assert!(out.is_empty());
        assert!(!r.carrier_busy());
        // ... but it does raise the measured noise.
        assert!(r.noise_power().value() > r.config().noise_floor.value());
    }

    #[test]
    fn comparable_overlap_corrupts_locked_frame() {
        let mut r = radio();
        let mut out = Vec::new();
        r.on_arrival_start(1, MID, t(100), &"victim", &mut out);
        // Same power: SINR ≈ 1 < 10 → collision.
        r.on_arrival_start(2, MID, t(120), &"interferer", &mut out);
        out.clear();
        r.on_arrival_end(1, &mut out);
        assert!(
            matches!(out[0], RadioEvent::RxEnd { ok: false, .. }),
            "locked frame must be corrupted: {out:?}"
        );
    }

    #[test]
    fn strong_frame_captures_over_weak_interferer() {
        let mut r = radio();
        let mut out = Vec::new();
        r.on_arrival_start(1, STRONG, t(100), &"victim", &mut out);
        // 100× weaker: SINR 100 ≥ 10 → capture, reception survives.
        r.on_arrival_start(2, MID, t(120), &"interferer", &mut out);
        out.clear();
        r.on_arrival_end(1, &mut out);
        assert!(matches!(out[0], RadioEvent::RxEnd { ok: true, .. }));
    }

    #[test]
    fn no_relock_onto_stronger_later_frame() {
        let mut r = radio();
        let mut out = Vec::new();
        r.on_arrival_start(1, MID, t(100), &"first", &mut out);
        out.clear();
        r.on_arrival_start(2, STRONG, t(120), &"second", &mut out);
        // No RxStart for the stronger frame; the first is corrupted.
        assert!(out.iter().all(|e| !matches!(e, RadioEvent::RxStart { .. })));
        out.clear();
        r.on_arrival_end(2, &mut out);
        assert!(out.is_empty(), "interferer end is silent: {out:?}");
        r.on_arrival_end(1, &mut out);
        assert!(matches!(out[0], RadioEvent::RxEnd { ok: false, .. }));
    }

    #[test]
    fn cumulative_interference_corrupts_under_continuous_policy() {
        // One interferer at 1/12 the power keeps SINR = 12 ≥ 10 (fine), but
        // two of them push SINR to 6 < 10 → corrupted. StartOnly's pairwise
        // check (12 ≥ 10 each) misses this.
        let victim = Milliwatts(1.2e-4);
        let interferer = Milliwatts(1e-5);

        let mut cont = Radio::new(RadioConfig::ns2_default());
        let mut out = Vec::new();
        cont.on_arrival_start(1, victim, t(100), &"v", &mut out);
        cont.on_arrival_start(2, interferer, t(100), &"i1", &mut out);
        cont.on_arrival_start(3, interferer, t(100), &"i2", &mut out);
        out.clear();
        cont.on_arrival_end(1, &mut out);
        assert!(matches!(out[0], RadioEvent::RxEnd { ok: false, .. }));

        let mut start_only = Radio::new(RadioConfig {
            capture_policy: CapturePolicy::StartOnly,
            ..RadioConfig::ns2_default()
        });
        let mut out = Vec::new();
        start_only.on_arrival_start(1, victim, t(100), &"v", &mut out);
        start_only.on_arrival_start(2, interferer, t(100), &"i1", &mut out);
        start_only.on_arrival_start(3, interferer, t(100), &"i2", &mut out);
        out.clear();
        start_only.on_arrival_end(1, &mut out);
        assert!(
            matches!(out[0], RadioEvent::RxEnd { ok: true, .. }),
            "StartOnly's pairwise check must miss cumulative interference"
        );
    }

    #[test]
    fn tx_aborts_reception_and_blocks_hearing() {
        let mut r = radio();
        let mut out = Vec::new();
        r.on_arrival_start(1, STRONG, t(100), &"doomed", &mut out);
        out.clear();
        r.start_tx(t(50), &mut out);
        assert!(r.is_transmitting());
        // Frame arriving during our TX is never locked.
        r.on_arrival_start(2, STRONG, t(80), &"unheard", &mut out);
        assert!(out.iter().all(|e| !matches!(e, RadioEvent::RxStart { .. })));
        out.clear();
        // The aborted frame's end produces no RxEnd.
        r.on_arrival_end(1, &mut out);
        assert!(out.iter().all(|e| !matches!(e, RadioEvent::RxEnd { .. })));
        r.end_tx(&mut out);
        r.on_arrival_end(2, &mut out);
        assert!(!r.carrier_busy());
    }

    #[test]
    fn missed_beginning_means_no_decode_after_tx() {
        let mut r = radio();
        let mut out = Vec::new();
        r.start_tx(t(50), &mut out);
        r.on_arrival_start(1, STRONG, t(200), &"partial", &mut out);
        out.clear();
        r.end_tx(&mut out);
        // Still busy: the partial arrival is in the air above CSThresh.
        assert!(r.carrier_busy());
        assert!(!r.is_receiving());
        r.on_arrival_end(1, &mut out);
        assert!(out.iter().all(|e| !matches!(e, RadioEvent::RxEnd { .. })));
    }

    #[test]
    fn noise_power_excludes_locked_frame() {
        let mut r = radio();
        let mut out = Vec::new();
        r.on_arrival_start(1, STRONG, t(100), &"locked", &mut out);
        let quiet_noise = r.noise_power();
        assert!((quiet_noise.value() - r.config().noise_floor.value()).abs() < 1e-15);
        r.on_arrival_start(2, MID, t(100), &"intf", &mut out);
        let loud_noise = r.noise_power();
        assert!((loud_noise.value() - (r.config().noise_floor + MID).value()).abs() < 1e-12);
    }

    #[test]
    fn busy_until_last_arrival_ends() {
        let mut r = radio();
        let mut out = Vec::new();
        r.on_arrival_start(1, SENSE_ONLY, t(100), &"a", &mut out);
        r.on_arrival_start(2, SENSE_ONLY, t(200), &"b", &mut out);
        out.clear();
        r.on_arrival_end(1, &mut out);
        assert!(out.is_empty(), "still busy from arrival 2");
        r.on_arrival_end(2, &mut out);
        assert_eq!(out, vec![RadioEvent::CarrierIdle]);
    }

    #[test]
    fn in_air_power_returns_to_zero() {
        let mut r = radio();
        let mut out = Vec::new();
        for k in 0..10 {
            r.on_arrival_start(k, MID, t(100), &"x", &mut out);
        }
        for k in 0..10 {
            r.on_arrival_end(k, &mut out);
        }
        assert_eq!(r.in_air_power(), Milliwatts::ZERO);
    }
}
