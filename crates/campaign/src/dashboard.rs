//! Cross-commit performance dashboard over committed artifacts.
//!
//! Every run of the bench and campaign drivers leaves machine-readable
//! JSON at the repo root (`BENCH_*.json`, `CAMPAIGN_*.json`,
//! `METRICS_*.json`). This module renders one markdown page over all of
//! them ([`render`]) and — given a second directory holding the
//! previous commit's artifacts — compares the perf-bearing numbers
//! within a tolerance band ([`compare`]), turning the CI perf smoke
//! into a regression *gate* instead of a trend log nobody reads.
//!
//! The comparison deliberately sticks to ratio-style metrics (bench
//! speedups, events per wall-second) because those are what the repo's
//! optimisation claims are phrased in; the simulation-quality metrics
//! in `CAMPAIGN_*.json` are deterministic in the seed and guarded by
//! tests, so the dashboard renders but never gates on them.

use std::fmt::Write as _;
use std::path::Path;

use pcmac::{RunReport, SimMetrics};
use serde::{Deserialize, Serialize, Value};

/// The `METRICS_<name>.json` campaign artifact: one entry per run this
/// invocation executed, carrying the run's [`SimMetrics`] plus the
/// wall-clock throughput numbers the perf gate compares.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsArtifact {
    /// Campaign label the runs came from.
    pub campaign: String,
    /// Per-run metrics, point-major / seed-minor in expansion order.
    pub runs: Vec<MetricsRun>,
}

/// One run's slice of a [`MetricsArtifact`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsRun {
    /// Materialized scenario name.
    pub name: String,
    /// Protocol under test.
    pub protocol: String,
    /// Master seed.
    pub seed: u64,
    /// Events processed.
    pub events: u64,
    /// Wall-clock seconds (nondeterministic; excluded from bit-identity
    /// obligations, which cover only the `metrics` section).
    pub wall_s: f64,
    /// Simulation throughput: `events / wall_s`.
    pub events_per_sec: f64,
    /// The run's deterministic observability metrics.
    pub metrics: SimMetrics,
}

impl MetricsArtifact {
    /// Collect the metrics-bearing runs of a campaign outcome. Returns
    /// `None` when no run carried metrics (the layer was off).
    pub fn from_runs(campaign: &str, runs: &[RunReport]) -> Option<Self> {
        let runs: Vec<MetricsRun> = runs
            .iter()
            .filter_map(|r| {
                let metrics = r.metrics.clone()?;
                Some(MetricsRun {
                    name: r.name.clone(),
                    protocol: r.protocol.clone(),
                    seed: r.seed,
                    events: r.events,
                    wall_s: r.wall_s,
                    events_per_sec: if r.wall_s > 0.0 {
                        r.events as f64 / r.wall_s
                    } else {
                        0.0
                    },
                    metrics,
                })
            })
            .collect();
        (!runs.is_empty()).then(|| MetricsArtifact {
            campaign: campaign.to_string(),
            runs,
        })
    }

    /// Serialize to pretty JSON (the `METRICS_*.json` artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifacts always serialize")
    }

    /// Parse a `METRICS_*.json` artifact back.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// One artifact directory scanned into the numbers the dashboard
/// renders and the gate compares.
#[derive(Debug, Default)]
pub struct Snapshot {
    /// `(file stem, row label, speedup)` per `BENCH_*.json` result row.
    pub bench_speedups: Vec<(String, String, f64)>,
    /// `(file stem, row label, peak RSS bytes)` per bench result row
    /// carrying a `peak_rss_bytes` field (the parallel bench's per-row
    /// child-process `VmHWM` probes).
    pub bench_memory: Vec<(String, String, u64)>,
    /// `(file stem, mean events/sec across runs)` per `METRICS_*.json`.
    pub events_per_sec: Vec<(String, f64)>,
    /// Raw parsed artifacts for rendering: `(file name, value)`.
    benches: Vec<(String, Value)>,
    campaigns: Vec<(String, Value)>,
    metrics: Vec<(String, MetricsArtifact)>,
}

/// Scan `dir` for the three artifact families. Unparseable files are
/// skipped with a stderr note rather than failing the whole dashboard —
/// a half-written artifact should not hide the rest.
pub fn scan(dir: &Path) -> std::io::Result<Snapshot> {
    let mut snap = Snapshot::default();
    let mut names: Vec<String> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    for name in names {
        let path = dir.join(&name);
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        if name.starts_with("BENCH_") {
            match serde_json::from_str::<Value>(&text) {
                Ok(v) => {
                    collect_bench_speedups(&name, &v, &mut snap.bench_speedups);
                    collect_bench_memory(&name, &v, &mut snap.bench_memory);
                    snap.benches.push((name, v));
                }
                Err(e) => eprintln!("skipping {name}: {e}"),
            }
        } else if name.starts_with("CAMPAIGN_") {
            match serde_json::from_str::<Value>(&text) {
                Ok(v) => snap.campaigns.push((name, v)),
                Err(e) => eprintln!("skipping {name}: {e}"),
            }
        } else if name.starts_with("METRICS_") {
            match MetricsArtifact::from_json(&text) {
                Ok(a) => {
                    let n = a.runs.len() as f64;
                    let mean = a.runs.iter().map(|r| r.events_per_sec).sum::<f64>() / n.max(1.0);
                    snap.events_per_sec.push((name.clone(), mean));
                    snap.metrics.push((name, a));
                }
                Err(e) => eprintln!("skipping {name}: {e}"),
            }
        }
    }
    Ok(snap)
}

/// Pull every `speedup*` field out of a bench artifact's result rows,
/// labelling each row by its non-timing coordinates (`n`, `mobility`).
fn collect_bench_speedups(file: &str, v: &Value, out: &mut Vec<(String, String, f64)>) {
    let Some(rows) = v.get("results").and_then(Value::as_seq) else {
        return;
    };
    for row in rows {
        let Some(fields) = row.as_map() else { continue };
        let mut label = String::new();
        for key in ["n", "mobility", "shards"] {
            if let Some(val) = row.get(key) {
                if !label.is_empty() {
                    label.push(' ');
                }
                let _ = write!(label, "{key}={}", scalar_str(val));
            }
        }
        for (k, val) in fields {
            if k.starts_with("speedup") {
                if let Some(s) = val.as_f64() {
                    out.push((file.to_string(), format!("{label} {k}"), s));
                }
            }
        }
    }
}

/// Pull every `peak_rss_bytes` field out of a bench artifact's result
/// rows, labelled like [`collect_bench_speedups`] so current and
/// baseline rows pair up in the gate.
fn collect_bench_memory(file: &str, v: &Value, out: &mut Vec<(String, String, u64)>) {
    let Some(rows) = v.get("results").and_then(Value::as_seq) else {
        return;
    };
    for row in rows {
        let Some(bytes) = row.get("peak_rss_bytes").and_then(Value::as_u64) else {
            continue;
        };
        let mut label = String::new();
        for key in ["n", "mobility", "shards"] {
            if let Some(val) = row.get(key) {
                if !label.is_empty() {
                    label.push(' ');
                }
                let _ = write!(label, "{key}={}", scalar_str(val));
            }
        }
        out.push((file.to_string(), label, bytes));
    }
}

fn scalar_str(v: &Value) -> String {
    if let Some(s) = v.as_str() {
        return s.to_string();
    }
    if let Some(u) = v.as_u64() {
        return u.to_string();
    }
    if let Some(f) = v.as_f64() {
        return format_num(f);
    }
    if let Some(b) = v.as_bool() {
        return b.to_string();
    }
    String::from("-")
}

fn format_num(f: f64) -> String {
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.0}")
    } else if f.abs() >= 1000.0 {
        format!("{f:.1}")
    } else {
        format!("{f:.3}")
    }
}

/// Render the whole snapshot as one markdown page.
pub fn render(snap: &Snapshot) -> String {
    let mut md = String::new();
    md.push_str("# Performance dashboard\n\n");
    md.push_str(
        "Rendered by `pcmac-campaign dashboard` from the committed \
         `BENCH_*.json`, `CAMPAIGN_*.json`, and `METRICS_*.json` \
         artifacts. Regenerate after refreshing any of them.\n",
    );

    md.push_str("\n## Benches\n");
    if snap.benches.is_empty() {
        md.push_str("\n_No `BENCH_*.json` artifacts found._\n");
    }
    for (file, v) in &snap.benches {
        let _ = writeln!(md, "\n### {file}");
        if let Some(desc) = v.get("description").and_then(Value::as_str) {
            let _ = writeln!(md, "\n{desc}");
        }
        if let Some(rows) = v.get("results").and_then(Value::as_seq) {
            render_generic_table(&mut md, rows);
        }
    }

    md.push_str("\n## Campaigns\n");
    if snap.campaigns.is_empty() {
        md.push_str("\n_No `CAMPAIGN_*.json` artifacts found._\n");
    }
    for (file, v) in &snap.campaigns {
        let _ = writeln!(md, "\n### {file}");
        let runs = v.get("runs").and_then(Value::as_u64).unwrap_or(0);
        let wall = v.get("wall_s").and_then(Value::as_f64).unwrap_or(0.0);
        let complete = v.get("complete").and_then(Value::as_bool);
        let _ = writeln!(
            md,
            "\n{runs} runs, {wall:.1} s CPU total{}",
            match complete {
                Some(false) => " — **incomplete artifact**",
                _ => "",
            }
        );
        let Some(points) = v.get("points").and_then(Value::as_seq) else {
            continue;
        };
        md.push_str("\n| protocol | load kbps | nodes | thpt kbps | delay ms | pdr % |\n");
        md.push_str("|---|---|---|---|---|---|\n");
        for p in points {
            let key = &p["key"];
            let _ = writeln!(
                md,
                "| {} | {} | {} | {} | {} | {} |",
                key.get("variant").and_then(Value::as_str).unwrap_or("-"),
                scalar_str(&key["load_kbps"]),
                scalar_str(&key["node_count"]),
                scalar_str(&p["throughput_kbps"]["mean"]),
                scalar_str(&p["mean_delay_ms"]["mean"]),
                p["pdr"]["mean"]
                    .as_f64()
                    .map(|x| format!("{:.1}", x * 100.0))
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }

    md.push_str("\n## Metrics\n");
    if snap.metrics.is_empty() {
        md.push_str("\n_No `METRICS_*.json` artifacts found._\n");
    }
    for (file, a) in &snap.metrics {
        let _ = writeln!(md, "\n### {file}");
        let _ = writeln!(md, "\nCampaign `{}`, {} runs.", a.campaign, a.runs.len());
        md.push_str(
            "\n| run | seed | events | events/s | sent | delivered | dropped | in flight |\n",
        );
        md.push_str("|---|---|---|---|---|---|---|---|\n");
        for r in &a.runs {
            let d = &r.metrics.drops;
            let _ = writeln!(
                md,
                "| {} | {} | {} | {} | {} | {} | {} | {} |",
                r.name,
                r.seed,
                r.events,
                format_num(r.events_per_sec),
                d.sent,
                d.delivered_unique,
                d.total_dropped(),
                d.in_flight_end,
            );
        }
    }
    md
}

/// Render a sequence of JSON maps as one markdown table, using the
/// first row's keys (insertion order) as columns.
fn render_generic_table(md: &mut String, rows: &[Value]) {
    let Some(first) = rows.first().and_then(Value::as_map) else {
        return;
    };
    let cols: Vec<&str> = first.iter().map(|(k, _)| k.as_str()).collect();
    let headers: Vec<&str> = cols
        .iter()
        .map(|&c| {
            if c == "peak_rss_bytes" {
                "peak RSS (MiB)"
            } else {
                c
            }
        })
        .collect();
    md.push('\n');
    let _ = writeln!(md, "| {} |", headers.join(" | "));
    let _ = writeln!(md, "|{}", "---|".repeat(cols.len()));
    for row in rows {
        let cells: Vec<String> = cols
            .iter()
            .map(|&c| match row.get(c) {
                Some(v) if c == "peak_rss_bytes" => v
                    .as_u64()
                    .map(|b| format!("{:.1}", b as f64 / (1024.0 * 1024.0)))
                    .unwrap_or_else(|| scalar_str(v)),
                Some(v) => scalar_str(v),
                None => "-".into(),
            })
            .collect();
        let _ = writeln!(md, "| {} |", cells.join(" | "));
    }
}

/// Ceiling for per-row peak-RSS growth against the baseline artifact:
/// a bench row using over 20% more memory than the committed baseline
/// fails the gate regardless of the (speed-oriented) `band_pct` — the
/// owner-only shard memory model is a headline claim, and a silent
/// creep back toward full replicas would not show up in speedups.
const MEMORY_BAND_PCT: f64 = 20.0;

/// Compare the perf-bearing numbers of `current` against `baseline`:
/// every bench speedup and every METRICS events/sec mean must stay
/// within `band_pct` percent of the baseline value, and every bench
/// row's peak RSS must stay under [`MEMORY_BAND_PCT`] percent *above*
/// its baseline. Returns one message per regression (empty = gate
/// passes). Rows present on only one side are ignored — adding a bench
/// size or a campaign must not fail CI.
pub fn compare(current: &Snapshot, baseline: &Snapshot, band_pct: f64) -> Vec<String> {
    let floor = 1.0 - band_pct / 100.0;
    let mut regressions = Vec::new();
    for (file, label, base) in &baseline.bench_memory {
        let Some((_, _, cur)) = current
            .bench_memory
            .iter()
            .find(|(f, l, _)| f == file && l == label)
        else {
            continue;
        };
        let ceiling = (*base as f64 * (1.0 + MEMORY_BAND_PCT / 100.0)) as u64;
        if *base > 0 && *cur > ceiling {
            regressions.push(format!(
                "{file} {label}: peak RSS {} MiB grew more than {MEMORY_BAND_PCT:.0}% above                  the baseline {} MiB",
                *cur / (1024 * 1024),
                *base / (1024 * 1024),
            ));
        }
    }
    for (file, label, base) in &baseline.bench_speedups {
        let Some((_, _, cur)) = current
            .bench_speedups
            .iter()
            .find(|(f, l, _)| f == file && l == label)
        else {
            continue;
        };
        if *base > 0.0 && *cur < base * floor {
            regressions.push(format!(
                "{file} {label}: speedup {cur:.3} fell more than {band_pct:.0}% below \
                 the baseline {base:.3}"
            ));
        }
    }
    for (file, base) in &baseline.events_per_sec {
        let Some((_, cur)) = current.events_per_sec.iter().find(|(f, _)| f == file) else {
            continue;
        };
        if *base > 0.0 && *cur < base * floor {
            regressions.push(format!(
                "{file}: mean events/sec {} fell more than {band_pct:.0}% below the \
                 baseline {}",
                format_num(*cur),
                format_num(*base),
            ));
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(speedup: f64, eps: f64) -> Snapshot {
        Snapshot {
            bench_speedups: vec![(
                "BENCH_mobility.json".into(),
                "n=200 mobility=waypoint speedup".into(),
                speedup,
            )],
            events_per_sec: vec![("METRICS_churn.json".into(), eps)],
            ..Snapshot::default()
        }
    }

    fn snap_with_memory(bytes: u64) -> Snapshot {
        Snapshot {
            bench_memory: vec![(
                "BENCH_parallel.json".into(),
                "n=64000 shards=8".into(),
                bytes,
            )],
            ..Snapshot::default()
        }
    }

    #[test]
    fn memory_gate_fails_only_past_twenty_percent_growth() {
        let base = snap_with_memory(100 * 1024 * 1024);
        let ok = snap_with_memory(115 * 1024 * 1024);
        assert!(compare(&ok, &base, 10.0).is_empty());
        let shrink = snap_with_memory(40 * 1024 * 1024);
        assert!(
            compare(&shrink, &base, 10.0).is_empty(),
            "shrinking never gates"
        );
        let bad = snap_with_memory(130 * 1024 * 1024);
        let regressions = compare(&bad, &base, 10.0);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("peak RSS"));
    }

    #[test]
    fn bench_memory_rows_are_collected_and_labelled() {
        let v: Value = serde_json::from_str(
            r#"{"bench":"parallel","results":[
                {"n":4000,"shards":0,"peak_rss_bytes":1048576},
                {"n":4000,"shards":8,"peak_rss_bytes":2097152},
                {"n":16000,"shards":4}]}"#,
        )
        .unwrap();
        let mut out = Vec::new();
        collect_bench_memory("BENCH_parallel.json", &v, &mut out);
        assert_eq!(out.len(), 2, "rows without the field are skipped");
        assert_eq!(out[0].1, "n=4000 shards=0");
        assert_eq!(out[1].2, 2_097_152);
    }

    #[test]
    fn gate_passes_within_band() {
        let base = snap_with(1.5, 100_000.0);
        let cur = snap_with(1.45, 95_000.0);
        assert!(compare(&cur, &base, 10.0).is_empty());
    }

    #[test]
    fn gate_fails_beyond_band() {
        let base = snap_with(1.5, 100_000.0);
        let cur = snap_with(1.2, 80_000.0);
        let regressions = compare(&cur, &base, 10.0);
        assert_eq!(regressions.len(), 2, "{regressions:?}");
    }

    #[test]
    fn missing_rows_do_not_gate() {
        let base = snap_with(1.5, 100_000.0);
        let cur = Snapshot::default();
        assert!(compare(&cur, &base, 10.0).is_empty());
    }

    #[test]
    fn bench_speedups_are_collected_per_row() {
        let v: Value = serde_json::from_str(
            r#"{"bench":"mobility","results":[
                {"n":200,"mobility":"waypoint","speedup_x":1.5},
                {"n":400,"speedup_x":2.0},
                {"n":16000,"shards":4,"speedup_x":3.0}]}"#,
        )
        .unwrap();
        let mut out = Vec::new();
        collect_bench_speedups("BENCH_mobility.json", &v, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].1, "n=200 mobility=waypoint speedup_x");
        assert_eq!(out[1].2, 2.0);
        assert_eq!(out[2].1, "n=16000 shards=4 speedup_x");
    }
}
