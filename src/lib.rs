pub use pcmac::*;
