//! Criterion wrappers for the figure workloads.
//!
//! `cargo bench` must exercise every figure target, so these run a
//! *reduced* version of each figure's simulation (8 nodes, short
//! duration) per iteration and report its wall cost. The full-fidelity
//! regeneration lives in the `fig8_throughput` / `fig9_delay` binaries;
//! these benches keep the figure pipelines compiling, running, and
//! performance-tracked.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pcmac::{FlowShape, FlowSpec, NodeSetup};
use pcmac::{ScenarioConfig, Simulator, Variant};
use pcmac_engine::FlowId;
use pcmac_engine::{Duration, Milliwatts, NodeId, Point, SimTime};

/// A small but non-trivial multi-hop scenario: 8 static nodes on a 150 m
/// grid with two crossing flows, `load_kbps` aggregate.
fn mini_scenario(variant: Variant, load_kbps: f64, seed: u64) -> ScenarioConfig {
    let duration = Duration::from_secs(5);
    let mut cfg = ScenarioConfig::two_nodes(variant, 80.0, 1000.0, seed);
    cfg.name = format!("mini-{}-{load_kbps}", variant.name());
    cfg.nodes = NodeSetup::Static(
        (0..8)
            .map(|i| {
                Point::new(
                    100.0 + 150.0 * (i % 4) as f64,
                    100.0 + 150.0 * (i / 4) as f64,
                )
            })
            .collect(),
    );
    let per_flow = load_kbps * 1000.0 / 2.0;
    cfg.flows = vec![
        FlowSpec {
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(3),
            bytes: 512,
            rate_bps: per_flow,
            start: SimTime::ZERO + Duration::from_millis(100),
            stop: SimTime::ZERO + duration,
            shape: FlowShape::Cbr,
        },
        FlowSpec {
            flow: FlowId(1),
            src: NodeId(4),
            dst: NodeId(7),
            bytes: 512,
            rate_bps: per_flow,
            start: SimTime::ZERO + Duration::from_millis(150),
            stop: SimTime::ZERO + duration,
            shape: FlowShape::Cbr,
        },
    ];
    cfg.radio.capture_policy = pcmac_phy::CapturePolicy::StartOnly;
    let _ = Milliwatts(0.0);
    cfg.with_duration(duration)
}

/// Figure 8 workload (throughput axis): one load point per protocol.
fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_throughput_mini");
    g.sample_size(10);
    for v in Variant::ALL {
        g.bench_function(v.name().replace(' ', "_"), |b| {
            b.iter(|| {
                let r = Simulator::new(mini_scenario(v, 400.0, 1)).run();
                black_box(r.throughput_kbps)
            });
        });
    }
    g.finish();
}

/// Figure 9 workload (delay axis): the same runs read the delay metric.
fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_delay_mini");
    g.sample_size(10);
    for v in Variant::ALL {
        g.bench_function(v.name().replace(' ', "_"), |b| {
            b.iter(|| {
                let r = Simulator::new(mini_scenario(v, 400.0, 1)).run();
                black_box(r.mean_delay_ms)
            });
        });
    }
    g.finish();
}

/// The §IV power-level table computation.
fn bench_table(c: &mut Criterion) {
    use pcmac_phy::{PowerLevels, Propagation, TwoRayGround};
    c.bench_function("table_power_levels", |b| {
        let model = TwoRayGround::ns2_default();
        let levels = PowerLevels::paper_defaults();
        b.iter(|| {
            let mut acc = 0.0;
            for &p in levels.all() {
                acc += model.range_for(p, Milliwatts(3.652e-7));
                acc += model.range_for(p, Milliwatts(1.559e-8));
            }
            black_box(acc)
        });
    });
}

criterion_group!(figures, bench_fig8, bench_fig9, bench_table);
criterion_main!(figures);
