//! Edge-case behaviour of the DCF engine: wrong-peer frames, response
//! races, backoff freezing arithmetic, queue plumbing, peer resets.

use pcmac_engine::{
    Duration, FlowId, Milliwatts, NodeId, PacketId, SessionId, SimTime, TimerToken,
};
use pcmac_mac::{DcfMac, Frame, FrameBody, FrameKind, MacAction, MacConfig, MacTimerKind, Variant};
use pcmac_net::Packet;

const MAX_P: Milliwatts = Milliwatts(281.83815);

fn t(us: u64) -> SimTime {
    SimTime::ZERO + Duration::from_micros(us)
}

fn mac(id: u32, variant: Variant) -> DcfMac {
    DcfMac::new(NodeId(id), MacConfig::paper_default(variant), 42)
}

fn data_packet(n: u64, src: u32, dst: u32) -> Packet {
    Packet::data(
        PacketId(n),
        FlowId(0),
        NodeId(src),
        NodeId(dst),
        512,
        SimTime::ZERO,
    )
}

fn armed(out: &[MacAction], kind: MacTimerKind) -> Option<(Duration, TimerToken)> {
    out.iter().find_map(|a| match a {
        MacAction::Arm {
            kind: k,
            delay,
            token,
        } if *k == kind => Some((*delay, *token)),
        _ => None,
    })
}

fn tx_frames(out: &[MacAction]) -> Vec<Frame> {
    out.iter()
        .filter_map(|a| match a {
            MacAction::TxFrame { frame, .. } => Some(frame.clone()),
            _ => None,
        })
        .collect()
}

/// Drive to WaitCts: enqueue, defer/backoff, RTS on air, tx end.
fn to_wait_cts(m: &mut DcfMac, pkt: Packet) -> SimTime {
    let mut out = Vec::new();
    m.enqueue(pkt, NodeId(2), t(0), &mut out);
    let (d, tok) = armed(&out, MacTimerKind::Defer).unwrap();
    let mut now = t(0) + d;
    out.clear();
    m.on_timer(MacTimerKind::Defer, tok, now, &mut out);
    if let Some((bd, tok2)) = armed(&out, MacTimerKind::Backoff) {
        now += bd;
        out.clear();
        m.on_timer(MacTimerKind::Backoff, tok2, now, &mut out);
    }
    assert_eq!(tx_frames(&out)[0].kind, FrameKind::Rts);
    now += Duration::from_micros(352);
    out.clear();
    m.on_tx_end(now, &mut out);
    assert!(armed(&out, MacTimerKind::CtsTimeout).is_some());
    now
}

fn mk_cts(from: u32) -> Frame {
    Frame {
        kind: FrameKind::Cts,
        tx: NodeId(from),
        rx: NodeId(1),
        duration: Duration::from_micros(2500),
        tx_power: MAX_P,
        body: FrameBody::Cts {
            required_data_power: None,
            last_received: None,
        },
    }
}

#[test]
fn cts_from_wrong_peer_is_ignored() {
    let mut m = mac(1, Variant::Basic);
    let now = to_wait_cts(&mut m, data_packet(1, 1, 2));
    let mut out = Vec::new();
    // CTS arrives from node 9, not our peer 2.
    m.on_rx_end(
        mk_cts(9),
        Milliwatts(1e-4),
        true,
        now + Duration::from_micros(300),
        &mut out,
    );
    assert!(
        armed(&out, MacTimerKind::Response).is_none(),
        "wrong-peer CTS must not start a DATA response"
    );
    // The right CTS still works afterwards.
    out.clear();
    m.on_rx_end(
        mk_cts(2),
        Milliwatts(1e-4),
        true,
        now + Duration::from_micros(310),
        &mut out,
    );
    assert!(armed(&out, MacTimerKind::Response).is_some());
}

#[test]
fn stray_ack_outside_wait_ack_is_ignored() {
    let mut m = mac(1, Variant::Basic);
    let mut out = Vec::new();
    let ack = Frame {
        kind: FrameKind::Ack,
        tx: NodeId(2),
        rx: NodeId(1),
        duration: Duration::ZERO,
        tx_power: MAX_P,
        body: FrameBody::Ack,
    };
    m.on_rx_end(ack, Milliwatts(1e-4), true, t(5), &mut out);
    // Nothing armed, nothing transmitted, nothing delivered.
    assert!(
        out.iter().all(|a| !matches!(a, MacAction::Arm { .. })),
        "stray ACK caused actions: {out:?}"
    );
}

#[test]
fn overheard_data_reserves_ack_window() {
    let mut m = mac(3, Variant::Basic);
    let mut out = Vec::new();
    let data = Frame {
        kind: FrameKind::Data,
        tx: NodeId(1),
        rx: NodeId(2),
        duration: Duration::from_micros(314), // SIFS + ACK
        tx_power: MAX_P,
        body: FrameBody::Data {
            packet: data_packet(1, 1, 2),
            seq: 0,
            session: SessionId::for_pair(NodeId(1), NodeId(2)),
            needs_ack: true,
        },
    };
    m.on_rx_end(data, Milliwatts(1e-4), true, t(0), &mut out);
    let (delay, _) = armed(&out, MacTimerKind::NavExpire).expect("NAV from DATA duration");
    assert_eq!(delay, Duration::from_micros(314));
}

#[test]
fn broadcast_data_sets_no_nav() {
    let mut m = mac(3, Variant::Basic);
    let mut out = Vec::new();
    let bcast = Frame {
        kind: FrameKind::Data,
        tx: NodeId(1),
        rx: NodeId::BROADCAST,
        duration: Duration::ZERO,
        tx_power: MAX_P,
        body: FrameBody::Data {
            packet: data_packet(1, 1, 2),
            seq: 0,
            session: SessionId::for_pair(NodeId(1), NodeId::BROADCAST),
            needs_ack: false,
        },
    };
    m.on_rx_end(bcast, Milliwatts(1e-4), true, t(0), &mut out);
    assert!(armed(&out, MacTimerKind::NavExpire).is_none());
    // Broadcast content is delivered upward.
    assert!(out.iter().any(|a| matches!(a, MacAction::Deliver { .. })));
}

#[test]
fn rts_ignored_while_response_pending() {
    let mut m = mac(2, Variant::Basic);
    let mut out = Vec::new();
    let rts = |from: u32| Frame {
        kind: FrameKind::Rts,
        tx: NodeId(from),
        rx: NodeId(2),
        duration: Duration::from_micros(4000),
        tx_power: MAX_P,
        body: FrameBody::Rts { sender_noise: None },
    };
    m.on_rx_end(rts(1), Milliwatts(1e-4), true, t(0), &mut out);
    assert!(armed(&out, MacTimerKind::Response).is_some());
    out.clear();
    // A second RTS lands before our CTS response fires.
    m.on_rx_end(rts(7), Milliwatts(1e-4), true, t(3), &mut out);
    assert!(
        armed(&out, MacTimerKind::Response).is_none(),
        "second responder role must be refused while one is pending"
    );
}

#[test]
fn backoff_freeze_consumes_whole_slots_only() {
    let mut m = mac(1, Variant::Basic);
    let mut out = Vec::new();
    // Busy medium at enqueue → backoff path with a drawn count.
    m.on_carrier(true, t(0), &mut out);
    m.enqueue(data_packet(1, 1, 2), NodeId(2), t(1), &mut out);
    out.clear();
    m.on_carrier(false, t(100), &mut out);
    let (difs, tok) = armed(&out, MacTimerKind::Defer).unwrap();
    let t_defer_done = t(100) + difs;
    out.clear();
    m.on_timer(MacTimerKind::Defer, tok, t_defer_done, &mut out);
    let Some((total, _tok2)) = armed(&out, MacTimerKind::Backoff) else {
        // Zero draw: nothing to freeze; the scenario is vacuous with this
        // seed, which the launch helper in other tests covers.
        return;
    };
    let slots = total.as_micros() / 20;
    if slots < 2 {
        return;
    }
    // Freeze 1.5 slots into the countdown.
    let t_freeze = t_defer_done + Duration::from_micros(30);
    out.clear();
    m.on_carrier(true, t_freeze, &mut out);
    // Resume: defer again, then the remaining count must be slots − 1
    // (only the *whole* elapsed slot is consumed).
    out.clear();
    m.on_carrier(false, t_freeze + Duration::from_micros(50), &mut out);
    let (difs2, tok3) = armed(&out, MacTimerKind::Defer).unwrap();
    out.clear();
    m.on_timer(
        MacTimerKind::Defer,
        tok3,
        t_freeze + Duration::from_micros(50) + difs2,
        &mut out,
    );
    let (rem, _) = armed(&out, MacTimerKind::Backoff).expect("residual count");
    assert_eq!(
        rem.as_micros() / 20,
        slots - 1,
        "1.5 idle slots → exactly 1 slot consumed"
    );
}

#[test]
fn drain_next_hop_empties_queue_for_dead_peer() {
    let mut m = mac(1, Variant::Basic);
    let mut out = Vec::new();
    for n in 0..5 {
        m.enqueue(data_packet(n, 1, 2), NodeId(2), t(0), &mut out);
    }
    for n in 5..8 {
        m.enqueue(data_packet(n, 1, 3), NodeId(3), t(0), &mut out);
    }
    // One job is current (to node 2); the queue holds 4 + 3.
    let drained = m.drain_next_hop(NodeId(2));
    assert_eq!(drained.len(), 4, "queued frames for the dead hop");
    assert!(drained.iter().all(|qp| qp.next_hop == NodeId(2)));
    assert_eq!(m.queue_len(), 3 + 1, "others (and the current job) remain");
}

#[test]
fn pcmac_gives_up_after_retransmission_cap() {
    let mut cfg = MacConfig::paper_default(Variant::Pcmac);
    cfg.pcmac.max_retx = 1; // give up after a single replay
    let mut m = DcfMac::new(NodeId(1), cfg, 42);

    let mk_cts_none = || Frame {
        kind: FrameKind::Cts,
        tx: NodeId(2),
        rx: NodeId(1),
        duration: Duration::from_micros(2500),
        tx_power: Milliwatts(1.0),
        body: FrameBody::Cts {
            required_data_power: Some(Milliwatts(1.0)),
            last_received: None, // never confirms anything
        },
    };

    // Exchange 1: packet 1 sent (seq 0), receiver echoes nothing.
    let mut now = to_wait_cts(&mut m, data_packet(1, 1, 2));
    let mut out = Vec::new();
    now += Duration::from_micros(314);
    m.on_rx_end(mk_cts_none(), Milliwatts(1e-3), true, now, &mut out);
    let (_, tok) = armed(&out, MacTimerKind::Response).unwrap();
    out.clear();
    now += Duration::from_micros(10);
    m.on_timer(MacTimerKind::Response, tok, now, &mut out);
    out.clear();
    now += Duration::from_micros(2500);
    m.on_tx_end(now, &mut out);

    // Exchange 2 (packet 2): echo still None → replay packet 1 (retx 1).
    let step = |m: &mut DcfMac, now: &mut SimTime, enqueue: Option<Packet>| -> Frame {
        let mut out = Vec::new();
        if let Some(p) = enqueue {
            m.enqueue(p, NodeId(2), *now, &mut out);
        } else {
            // The job is already current (queued at the previous step);
            // bounce the medium to retrigger the access procedure.
            m.on_carrier(true, *now, &mut out);
            *now += Duration::from_micros(5);
            m.on_carrier(false, *now, &mut out);
        }
        let (d, tok) = armed(&out, MacTimerKind::Defer).unwrap();
        *now += d;
        out.clear();
        m.on_timer(MacTimerKind::Defer, tok, *now, &mut out);
        if let Some((bd, tok2)) = armed(&out, MacTimerKind::Backoff) {
            *now += bd;
            out.clear();
            m.on_timer(MacTimerKind::Backoff, tok2, *now, &mut out);
        }
        *now += Duration::from_micros(352);
        out.clear();
        m.on_tx_end(*now, &mut out);
        *now += Duration::from_micros(314);
        out.clear();
        m.on_rx_end(mk_cts_none(), Milliwatts(1e-3), true, *now, &mut out);
        let (_, tok) = armed(&out, MacTimerKind::Response).unwrap();
        *now += Duration::from_micros(10);
        out.clear();
        m.on_timer(MacTimerKind::Response, tok, *now, &mut out);
        let f = tx_frames(&out)[0].clone();
        *now += Duration::from_micros(2500);
        let mut out2 = Vec::new();
        m.on_tx_end(*now, &mut out2);
        f
    };

    let f2 = step(&mut m, &mut now, Some(data_packet(2, 1, 2)));
    match &f2.body {
        FrameBody::Data { packet, .. } => {
            assert_eq!(packet.id, PacketId(1), "first mismatch replays packet 1")
        }
        b => panic!("{b:?}"),
    }
    assert_eq!(m.counters.implicit_retx, 1);

    // Exchange 3: echo still None, but cap (1) is reached → give up and
    // send the fresh packet 2.
    let f3 = step(&mut m, &mut now, None);
    match &f3.body {
        FrameBody::Data { packet, .. } => {
            assert_eq!(packet.id, PacketId(2), "cap reached: move on")
        }
        b => panic!("{b:?}"),
    }
    assert_eq!(m.counters.implicit_give_ups, 1);
}

#[test]
fn reset_peer_state_forgets_the_echo() {
    let mut m = mac(2, Variant::Pcmac);
    let mut out = Vec::new();
    let session = SessionId::for_pair(NodeId(1), NodeId(2));
    // Receive a data frame → received-table remembers (session, 0).
    let data = Frame {
        kind: FrameKind::Data,
        tx: NodeId(1),
        rx: NodeId(2),
        duration: Duration::ZERO,
        tx_power: Milliwatts(2.0),
        body: FrameBody::Data {
            packet: data_packet(1, 1, 2),
            seq: 0,
            session,
            needs_ack: false,
        },
    };
    m.on_rx_end(data, Milliwatts(1e-3), true, t(0), &mut out);
    out.clear();

    // An RTS now draws a CTS echoing (session, 0).
    let rts = Frame {
        kind: FrameKind::Rts,
        tx: NodeId(1),
        rx: NodeId(2),
        duration: Duration::from_micros(3000),
        tx_power: Milliwatts(2.0),
        body: FrameBody::Rts {
            sender_noise: Some(Milliwatts(1e-9)),
        },
    };
    m.on_rx_end(rts.clone(), Milliwatts(1e-3), true, t(400), &mut out);
    let (_, tok) = armed(&out, MacTimerKind::Response).unwrap();
    out.clear();
    m.on_timer(MacTimerKind::Response, tok, t(410), &mut out);
    match &tx_frames(&out)[0].body {
        FrameBody::Cts { last_received, .. } => {
            assert_eq!(*last_received, Some((session, 0)))
        }
        b => panic!("{b:?}"),
    }
    let mut out2 = Vec::new();
    m.on_tx_end(t(714), &mut out2); // finish our CTS

    // Routing reset (RREP/RERR) clears the table → echo gone.
    m.reset_peer_state(NodeId(1));
    let mut out = Vec::new();
    m.on_rx_end(rts, Milliwatts(1e-3), true, t(10_000), &mut out);
    let (_, tok) = armed(&out, MacTimerKind::Response).unwrap();
    out.clear();
    m.on_timer(MacTimerKind::Response, tok, t(10_010), &mut out);
    match &tx_frames(&out)[0].body {
        FrameBody::Cts { last_received, .. } => {
            assert_eq!(*last_received, None, "reset must forget the echo")
        }
        b => panic!("{b:?}"),
    }
}
