//! Campaign specifications: a base scenario spec expanded across
//! parameter grids × seed lists into concrete runs.
//!
//! A campaign is the unit the paper's evaluation is actually made of —
//! Figures 8/9 are (variant × offered load × seed) grids, the power-level
//! table is a (level-set) sweep, the density extension a (node count)
//! sweep. [`CampaignSpec::expand`] produces one [`CampaignPoint`] per
//! grid cell, each holding one materialized [`ScenarioConfig`] per seed.

use pcmac::{ScenarioConfig, Variant};
use serde::{Deserialize, Serialize};

use crate::spec::{ScenarioSpec, SpecError};

/// The sweep axes. Every `None` axis stays at the base spec's value;
/// every `Some` axis multiplies the grid.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AxesSpec {
    /// Aggregate offered loads (kbps).
    pub loads_kbps: Option<Vec<f64>>,
    /// Node counts (density sweeps).
    pub node_counts: Option<Vec<usize>>,
    /// MAC variants to compare.
    pub variants: Option<Vec<Variant>>,
    /// Discrete transmit power-level sets (mW, each strictly increasing).
    pub power_level_sets_mw: Option<Vec<Vec<f64>>>,
}

/// A declarative campaign: base spec × axes × seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign label; the output artifact is `CAMPAIGN_<name>.json`.
    pub name: String,
    /// The scenario every grid point starts from.
    pub base: ScenarioSpec,
    /// Override the base spec's duration (s) for every run — shrinking a
    /// published campaign for smoke tests without editing the base.
    pub duration_s: Option<f64>,
    /// Seeds run (and later averaged) per grid point.
    pub seeds: Vec<u64>,
    /// Sweep axes.
    pub axes: AxesSpec,
}

/// The coordinates of one grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointKey {
    /// Protocol name (paper naming).
    pub variant: String,
    /// Aggregate offered load (kbps).
    pub load_kbps: f64,
    /// Node count.
    pub node_count: usize,
    /// Power-level set (mW), when that axis is swept.
    pub power_levels_mw: Option<Vec<f64>>,
}

/// One grid point: its coordinates and one concrete scenario per seed.
#[derive(Debug, Clone)]
pub struct CampaignPoint {
    /// Grid coordinates.
    pub key: PointKey,
    /// Seeds, aligned with `scenarios`.
    pub seeds: Vec<u64>,
    /// One runnable scenario per seed.
    pub scenarios: Vec<ScenarioConfig>,
}

impl CampaignSpec {
    /// Check the campaign (base spec, seeds, axis values) with actionable
    /// messages.
    pub fn validate(&self) -> Result<(), SpecError> {
        let mut problems = Vec::new();
        if let Err(e) = self.base.validate() {
            problems.extend(e.problems.into_iter().map(|p| format!("base: {p}")));
        }
        if self.seeds.is_empty() {
            problems.push("campaign has no seeds".into());
        }
        if let Some(d) = self.duration_s {
            if !d.is_finite() || d <= 0.0 {
                problems.push(format!("duration {d} s must be positive and finite"));
            } else if d <= self.base.min_duration_s() {
                // The override replaces the base duration at expansion;
                // catch an over-shrunk campaign here, not mid-expand.
                problems.push(format!(
                    "duration override {d} s leaves later flows no airtime (flow starts are staggered up to {:.3} s)",
                    self.base.min_duration_s()
                ));
            }
        }
        if let Some(loads) = &self.axes.loads_kbps {
            if loads.is_empty() {
                problems.push("loads_kbps axis is empty".into());
            }
            for l in loads {
                if !l.is_finite() || *l <= 0.0 {
                    problems.push(format!("load {l} kbps must be positive and finite"));
                }
            }
        }
        if let Some(counts) = &self.axes.node_counts {
            if counts.is_empty() {
                problems.push("node_counts axis is empty".into());
            }
            if counts.iter().any(|c| *c < 2) {
                problems.push("node counts must be at least 2".into());
            }
            if matches!(
                self.base.nodes.placement,
                crate::spec::PlacementSpec::Density { .. }
                    | crate::spec::PlacementSpec::Explicit { .. }
            ) {
                problems.push(
                    "node_counts axis conflicts with a placement that implies its own count".into(),
                );
            }
        }
        if let Some(vs) = &self.axes.variants {
            if vs.is_empty() {
                problems.push("variants axis is empty".into());
            }
        }
        if let Some(sets) = &self.axes.power_level_sets_mw {
            if sets.is_empty() {
                problems.push("power_level_sets_mw axis is empty".into());
            }
            for (i, levels) in sets.iter().enumerate() {
                if levels.is_empty() {
                    problems.push(format!("power level set {i} is empty"));
                } else if levels.iter().any(|l| !l.is_finite() || *l <= 0.0) {
                    problems.push(format!(
                        "power level set {i} must be all-positive and finite (mW)"
                    ));
                } else if levels.windows(2).any(|w| w[0] >= w[1]) {
                    problems.push(format!("power level set {i} must be strictly increasing"));
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(SpecError { problems })
        }
    }

    /// Number of grid points (before seeds).
    pub fn point_count(&self) -> usize {
        let axis = |n: Option<usize>| n.unwrap_or(1).max(1);
        axis(self.axes.loads_kbps.as_ref().map(Vec::len))
            * axis(self.axes.node_counts.as_ref().map(Vec::len))
            * axis(self.axes.variants.as_ref().map(Vec::len))
            * axis(self.axes.power_level_sets_mw.as_ref().map(Vec::len))
    }

    /// Total runs the campaign will execute.
    pub fn run_count(&self) -> usize {
        self.point_count() * self.seeds.len()
    }

    /// Expand the grid: for every (load × count × level-set × variant)
    /// cell, materialize the base spec at each seed. Every materialized
    /// scenario is validated; the first defective cell aborts the
    /// expansion with its full problem list.
    pub fn expand(&self) -> Result<Vec<CampaignPoint>, SpecError> {
        self.validate()?;
        let one_load = [self.base.traffic.offered_load_kbps];
        let loads = self.axes.loads_kbps.as_deref().unwrap_or(&one_load);
        let base_count = self.base.node_count()?;
        let one_count = [base_count];
        let counts = self.axes.node_counts.as_deref().unwrap_or(&one_count);
        let one_variant = [self.base.variant];
        let variants = self.axes.variants.as_deref().unwrap_or(&one_variant);
        // `None` for "whatever the base spec says" (usually the paper's
        // ten classes).
        let level_sets: Vec<Option<&Vec<f64>>> = match &self.axes.power_level_sets_mw {
            Some(sets) => sets.iter().map(Some).collect(),
            None => vec![None],
        };

        let mut points = Vec::with_capacity(self.point_count());
        for &load in loads {
            for &count in counts {
                for levels in &level_sets {
                    for &variant in variants {
                        let mut spec = self.base.clone();
                        spec.traffic.offered_load_kbps = load;
                        spec.variant = variant;
                        if !matches!(
                            spec.nodes.placement,
                            crate::spec::PlacementSpec::Density { .. }
                                | crate::spec::PlacementSpec::Explicit { .. }
                        ) {
                            spec.nodes.count = Some(count);
                        }
                        if let Some(levels) = levels {
                            spec.power_levels_mw = Some((*levels).clone());
                        }
                        if let Some(d) = self.duration_s {
                            spec.duration_s = d;
                        }
                        let scenarios: Vec<ScenarioConfig> = self
                            .seeds
                            .iter()
                            .map(|&seed| spec.materialize(seed))
                            .collect::<Result<_, _>>()?;
                        points.push(CampaignPoint {
                            key: PointKey {
                                variant: variant.name().to_string(),
                                load_kbps: load,
                                node_count: count,
                                power_levels_mw: levels.map(|l| (*l).clone()),
                            },
                            seeds: self.seeds.clone(),
                            scenarios,
                        });
                    }
                }
            }
        }
        Ok(points)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("specs always serialize")
    }

    /// Parse from JSON (no validation — call [`CampaignSpec::validate`]).
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}
