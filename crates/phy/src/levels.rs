//! The paper's discrete transmit power levels.
//!
//! §IV of the paper adopts ten levels (the same set as Jung & Vaidya's
//! power-control MAC study): 1, 2, 3.45, 4.8, 7.25, 10.6, 15, 36.6, 75.8
//! and 281.8 mW, "roughly corresponding" to decode ranges of 40–250 m under
//! the two-ray ground model. Senders pick the smallest level that satisfies
//! the needed power; a failed RTS raises the level one class at a time up
//! to the maximum (paper §III step 2).

use pcmac_engine::Milliwatts;
use serde::{Deserialize, Serialize};

/// An ordered set of discrete transmit power levels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerLevels {
    /// Strictly increasing power values.
    levels: Vec<Milliwatts>,
}

impl PowerLevels {
    /// The paper's ten levels. The maximum (281.83815 mW) is ns-2's exact
    /// Lucent WaveLAN default transmit power, quoted as "281.8 mW" in the
    /// paper.
    pub fn paper_defaults() -> Self {
        PowerLevels::new(vec![
            Milliwatts(1.0),
            Milliwatts(2.0),
            Milliwatts(3.45),
            Milliwatts(4.8),
            Milliwatts(7.25),
            Milliwatts(10.6),
            Milliwatts(15.0),
            Milliwatts(36.6),
            Milliwatts(75.8),
            Milliwatts(281.83815),
        ])
    }

    /// A single-level set: every frame at `p` (models basic 802.11, which
    /// has no power control).
    pub fn fixed(p: Milliwatts) -> Self {
        PowerLevels::new(vec![p])
    }

    /// Build from an arbitrary strictly-increasing level list.
    ///
    /// # Panics
    /// If `levels` is empty, non-increasing, or contains non-positive power.
    pub fn new(levels: Vec<Milliwatts>) -> Self {
        assert!(!levels.is_empty(), "need at least one power level");
        for w in levels.windows(2) {
            assert!(
                w[0].value() < w[1].value(),
                "levels must be strictly increasing"
            );
        }
        assert!(levels[0].value() > 0.0, "levels must be positive");
        PowerLevels { levels }
    }

    /// Number of classes.
    #[inline]
    pub fn count(&self) -> usize {
        self.levels.len()
    }

    /// All levels, ascending.
    #[inline]
    pub fn all(&self) -> &[Milliwatts] {
        &self.levels
    }

    /// The minimum (first) level.
    #[inline]
    pub fn min(&self) -> Milliwatts {
        self.levels[0]
    }

    /// The maximum (last) level — the "normal" power in the paper's terms.
    #[inline]
    pub fn max(&self) -> Milliwatts {
        *self.levels.last().unwrap()
    }

    /// The smallest level `≥ needed`, or `None` if even the maximum is
    /// insufficient (callers then either give up or use the maximum and
    /// accept the risk — PCMAC uses the maximum for unknown neighbours).
    pub fn quantize_up(&self, needed: Milliwatts) -> Option<Milliwatts> {
        self.levels
            .iter()
            .copied()
            .find(|l| l.value() >= needed.value())
    }

    /// Like [`PowerLevels::quantize_up`] but saturating at the maximum.
    pub fn quantize_up_or_max(&self, needed: Milliwatts) -> Milliwatts {
        self.quantize_up(needed).unwrap_or_else(|| self.max())
    }

    /// Index of the given level, if it is one of the classes.
    pub fn class_of(&self, p: Milliwatts) -> Option<usize> {
        self.levels
            .iter()
            .position(|l| (l.value() - p.value()).abs() < 1e-12)
    }

    /// The next class up from `p` (paper §III step 2: "increases its power
    /// level by one class until it gets to the maximal level"). If `p` is
    /// between classes, returns the next class above it. Saturates at max.
    pub fn step_up(&self, p: Milliwatts) -> Milliwatts {
        match self.class_of(p) {
            Some(i) if i + 1 < self.levels.len() => self.levels[i + 1],
            Some(_) => self.max(),
            None => self.quantize_up_or_max(p),
        }
    }
}

mod snap {
    use super::PowerLevels;

    pcmac_snap::snap_struct!(PowerLevels { levels });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::{Propagation, TwoRayGround};

    #[test]
    fn paper_has_ten_levels() {
        let l = PowerLevels::paper_defaults();
        assert_eq!(l.count(), 10);
        assert_eq!(l.min(), Milliwatts(1.0));
        assert!((l.max().value() - 281.83815).abs() < 1e-9);
    }

    /// The fidelity anchor from DESIGN.md §4: the paper's level → decode
    /// range mapping must emerge from our propagation model. The paper
    /// itself says the ranges "roughly correspond", so we allow ±4 m.
    #[test]
    fn paper_range_table_reproduces() {
        let model = TwoRayGround::ns2_default();
        let rx_thresh = Milliwatts(3.652e-7);
        let expected = [
            (1.0, 40.0),
            (2.0, 60.0),
            (3.45, 80.0),
            (4.8, 90.0),
            (7.25, 100.0),
            (10.6, 110.0),
            (15.0, 120.0),
            (36.6, 150.0),
            (75.8, 180.0),
            (281.83815, 250.0),
        ];
        for (mw, want_range) in expected {
            let got = model.range_for(Milliwatts(mw), rx_thresh);
            assert!(
                (got - want_range).abs() <= 4.0,
                "{mw} mW: computed range {got:.2} m vs paper {want_range} m"
            );
        }
    }

    #[test]
    fn quantize_up_picks_next_class() {
        let l = PowerLevels::paper_defaults();
        assert_eq!(l.quantize_up(Milliwatts(0.5)), Some(Milliwatts(1.0)));
        assert_eq!(l.quantize_up(Milliwatts(1.0)), Some(Milliwatts(1.0)));
        assert_eq!(l.quantize_up(Milliwatts(1.01)), Some(Milliwatts(2.0)));
        assert_eq!(l.quantize_up(Milliwatts(20.0)), Some(Milliwatts(36.6)));
        assert_eq!(l.quantize_up(Milliwatts(300.0)), None);
        assert!((l.quantize_up_or_max(Milliwatts(300.0)).value() - 281.83815).abs() < 1e-9);
    }

    #[test]
    fn quantize_is_idempotent() {
        let l = PowerLevels::paper_defaults();
        for &p in l.all() {
            assert_eq!(l.quantize_up(p), Some(p));
        }
    }

    #[test]
    fn step_up_walks_the_ladder() {
        let l = PowerLevels::paper_defaults();
        assert_eq!(l.step_up(Milliwatts(1.0)), Milliwatts(2.0));
        assert_eq!(l.step_up(Milliwatts(2.0)), Milliwatts(3.45));
        // saturates at max
        assert_eq!(l.step_up(l.max()), l.max());
        // off-class input snaps to the next class above
        assert_eq!(l.step_up(Milliwatts(5.0)), Milliwatts(7.25));
    }

    #[test]
    fn class_of_finds_exact_levels_only() {
        let l = PowerLevels::paper_defaults();
        assert_eq!(l.class_of(Milliwatts(7.25)), Some(4));
        assert_eq!(l.class_of(Milliwatts(7.0)), None);
    }

    #[test]
    fn fixed_set_has_one_level() {
        let l = PowerLevels::fixed(Milliwatts(281.83815));
        assert_eq!(l.count(), 1);
        assert_eq!(l.min(), l.max());
        assert_eq!(l.step_up(l.max()), l.max());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_levels() {
        PowerLevels::new(vec![Milliwatts(2.0), Milliwatts(1.0)]);
    }
}
