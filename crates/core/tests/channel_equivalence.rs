//! Grid-indexed channel ≡ brute-force channel.
//!
//! The uniform-grid spatial index is a pure optimization: for any
//! scenario, the set (and order) of arrivals it schedules must be
//! *identical* to the O(N) scan over all nodes, so a run under
//! `ChannelIndexMode::Grid` must equal a run under
//! `ChannelIndexMode::BruteForce` in every observable — event counts,
//! deliveries, MAC/routing counters, energy, per-flow breakdowns.
//!
//! These tests compare entire serialized [`RunReport`]s (minus wall-clock
//! time) across random seeds, field sizes, node counts, interference
//! floors, and protocol variants, under static placement, mobility, and
//! shadowing.

use pcmac::{
    ChannelIndexMode, ChurnConfig, CrashWindow, ExecutionMode, FaultConfig, FlowShape, FlowSpec,
    GainCacheMode, ImpairmentBurst, MetricsConfig, MobilityRefreshMode, NodeSetup, RunReport,
    ScenarioConfig, ShadowingConfig, Simulator, Variant,
};
use pcmac_engine::{Duration, FlowId, Milliwatts, NodeId, Point, RngStream, SimTime};
use proptest::prelude::*;

/// Strip the only legitimately nondeterministic field and serialize.
fn fingerprint(r: &RunReport) -> serde_json::Value {
    let text = serde_json::to_string(r).expect("reports serialize");
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    match v {
        serde_json::Value::Map(entries) => {
            serde_json::Value::Map(entries.into_iter().filter(|(k, _)| k != "wall_s").collect())
        }
        other => other,
    }
}

/// [`fingerprint`] minus the `metrics` section: the protocol-behavior
/// observables only, for comparing metrics-on against metrics-off runs.
fn behaviour_fingerprint(r: &RunReport) -> serde_json::Value {
    match fingerprint(r) {
        serde_json::Value::Map(entries) => serde_json::Value::Map(
            entries
                .into_iter()
                .filter(|(k, _)| k != "metrics")
                .collect(),
        ),
        other => other,
    }
}

/// [`fingerprint`] with `metrics.hot_path` removed: the hot-path
/// profile legitimately differs across refresh/cache/index modes (it
/// counts what each mode's machinery *did*), while every other metrics
/// field must be mode-invariant.
fn mode_invariant_fingerprint(r: &RunReport) -> serde_json::Value {
    let strip = |v: serde_json::Value| match v {
        serde_json::Value::Map(entries) => serde_json::Value::Map(
            entries
                .into_iter()
                .filter(|(k, _)| k != "hot_path")
                .collect(),
        ),
        other => other,
    };
    match fingerprint(r) {
        serde_json::Value::Map(entries) => serde_json::Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| {
                    if k == "metrics" {
                        (k, strip(v))
                    } else {
                        (k, v)
                    }
                })
                .collect(),
        ),
        other => other,
    }
}

/// A randomized scenario: `n` nodes scattered over a `side`×`side`
/// field with a handful of cross-field flows.
fn random_scenario(
    variant: Variant,
    seed: u64,
    n: usize,
    side: f64,
    floor: Milliwatts,
    mobile: bool,
    shadowing: Option<ShadowingConfig>,
) -> ScenarioConfig {
    let duration = Duration::from_secs(2);
    let mut cfg = ScenarioConfig::two_nodes(variant, 100.0, 1000.0, seed);
    cfg.name = format!("equiv-{seed}-{n}-{side}");
    cfg.field = (side, side);
    cfg.duration = duration;
    cfg.interference_floor = floor;
    cfg.shadowing = shadowing;
    if mobile {
        cfg.nodes = NodeSetup::UniformWaypoint {
            count: n,
            speed: 20.0, // fast: force many grid cell crossings
            pause: Duration::from_millis(200),
        };
    } else {
        let mut rng = RngStream::derive(seed, "equiv.placement");
        cfg.nodes = NodeSetup::Static(
            (0..n)
                .map(|_| Point::new(rng.uniform(0.0, side), rng.uniform(0.0, side)))
                .collect(),
        );
    }
    let mut rng = RngStream::derive(seed, "equiv.flows");
    cfg.flows = (0..4)
        .map(|i| {
            let src = rng.below(n as u64) as u32;
            let dst = loop {
                let d = rng.below(n as u64) as u32;
                if d != src {
                    break d;
                }
            };
            FlowSpec {
                flow: FlowId(i),
                src: NodeId(src),
                dst: NodeId(dst),
                bytes: 512,
                rate_bps: 40_000.0,
                start: SimTime::ZERO + Duration::from_millis(100 + 37 * i as u64),
                stop: SimTime::ZERO + duration,
                shape: FlowShape::Cbr,
            }
        })
        .collect();
    cfg
}

fn assert_equivalent(cfg: ScenarioConfig) {
    let mut grid_cfg = cfg.clone();
    grid_cfg.channel_index = ChannelIndexMode::Grid;
    let mut brute_cfg = cfg;
    brute_cfg.channel_index = ChannelIndexMode::BruteForce;
    let grid = Simulator::new(grid_cfg).run();
    let brute = Simulator::new(brute_cfg).run();
    assert!(
        grid.events > 0,
        "degenerate run: no events means the comparison is vacuous"
    );
    assert_eq!(
        fingerprint(&grid),
        fingerprint(&brute),
        "grid and brute-force channels diverged (seed {})",
        grid.seed
    );
}

/// The acceptance-criterion sweep: ≥16 distinct random seeds, static
/// fields of varying size and density, exact report equality.
#[test]
fn grid_matches_brute_force_across_16_seeds() {
    for seed in 0..16u64 {
        let n = 10 + (seed as usize % 4) * 8;
        let side = 800.0 + 400.0 * (seed % 5) as f64;
        let variant = Variant::ALL[seed as usize % 4];
        let cfg = random_scenario(variant, seed, n, side, Milliwatts(1.559e-10), false, None);
        assert_equivalent(cfg);
    }
}

#[test]
fn grid_matches_brute_force_under_mobility() {
    for seed in [3u64, 17, 40] {
        let cfg = random_scenario(
            Variant::Pcmac,
            seed,
            16,
            1500.0,
            Milliwatts(1.559e-10),
            true,
            None,
        );
        assert_equivalent(cfg);
    }
}

#[test]
fn grid_matches_brute_force_under_shadowing() {
    // Shadowing can lift links far beyond their median range; the index
    // must inflate its culling radius to cover the boost — in both the
    // reciprocal and the assumption-violating asymmetric mode.
    for symmetric in [true, false] {
        let cfg = random_scenario(
            Variant::Pcmac,
            9,
            14,
            1200.0,
            Milliwatts(1.559e-10),
            false,
            Some(ShadowingConfig {
                sigma_db: 6.0,
                symmetric,
            }),
        );
        assert_equivalent(cfg);
    }
}

#[test]
fn grid_matches_brute_force_under_mobility_with_shadowing() {
    // The hardest combination: the shadow-inflated culling radius must
    // stay a superset while incremental grid updates track cell
    // crossings — a regression in either alone could hide behind the
    // separate mobility and shadowing tests.
    for (seed, symmetric) in [(11u64, true), (23, false)] {
        let cfg = random_scenario(
            Variant::Pcmac,
            seed,
            14,
            1500.0,
            Milliwatts(1.559e-10),
            true,
            Some(ShadowingConfig {
                sigma_db: 5.0,
                symmetric,
            }),
        );
        assert_equivalent(cfg);
    }
}

#[test]
fn grid_matches_brute_force_with_disabled_floor() {
    // floor = 0 ⇒ every node hears every transmission; the index must
    // degrade to full coverage, not drop anyone.
    let cfg = random_scenario(Variant::Basic, 5, 12, 2000.0, Milliwatts(0.0), false, None);
    assert_equivalent(cfg);
}

/// Pin the indexed channel's refresh and cache strategies.
fn with_modes(
    mut cfg: ScenarioConfig,
    refresh: MobilityRefreshMode,
    cache: GainCacheMode,
) -> ScenarioConfig {
    cfg.channel_index = ChannelIndexMode::Grid;
    cfg.mobility_refresh = Some(refresh);
    cfg.gain_cache = Some(cache);
    cfg
}

/// The PR 4 acceptance bar: lazy refresh + block-sparse cache versus
/// eager refresh + dense cache (which falls back to live evaluation
/// under mobility, exactly the pre-lazy hot path) — bit-identical
/// reports on mobile scenarios across seeds.
#[test]
fn lazy_sparse_matches_eager_dense_under_mobility() {
    for seed in [2u64, 19, 31, 47] {
        let cfg = random_scenario(
            Variant::ALL[seed as usize % 4],
            seed,
            18,
            1600.0,
            Milliwatts(1.559e-10),
            true,
            None,
        );
        let lazy = Simulator::new(with_modes(
            cfg.clone(),
            MobilityRefreshMode::Lazy,
            GainCacheMode::Sparse,
        ))
        .run();
        let eager = Simulator::new(with_modes(
            cfg,
            MobilityRefreshMode::Eager,
            GainCacheMode::Dense,
        ))
        .run();
        assert!(lazy.events > 0, "degenerate run is a vacuous comparison");
        assert_eq!(
            fingerprint(&lazy),
            fingerprint(&eager),
            "lazy/sparse and eager/dense diverged (seed {seed})"
        );
    }
}

/// Same bar under shadowing, where gains are direction-dependent and
/// the sparse cache must key ordered pairs.
#[test]
fn lazy_sparse_matches_eager_dense_under_mobility_with_shadowing() {
    for (seed, symmetric) in [(13u64, true), (29, false)] {
        let cfg = random_scenario(
            Variant::Pcmac,
            seed,
            14,
            1500.0,
            Milliwatts(1.559e-10),
            true,
            Some(ShadowingConfig {
                sigma_db: 5.0,
                symmetric,
            }),
        );
        let lazy = Simulator::new(with_modes(
            cfg.clone(),
            MobilityRefreshMode::Lazy,
            GainCacheMode::Sparse,
        ))
        .run();
        let eager = Simulator::new(with_modes(
            cfg,
            MobilityRefreshMode::Eager,
            GainCacheMode::Dense,
        ))
        .run();
        assert_eq!(fingerprint(&lazy), fingerprint(&eager), "seed {seed}");
    }
}

/// Static scenarios: the block-sparse cache (lazy fill) must replay the
/// dense precomputed table bit for bit.
#[test]
fn sparse_cache_matches_dense_cache_when_static() {
    for seed in [4u64, 21] {
        let cfg = random_scenario(
            Variant::Pcmac,
            seed,
            20,
            1200.0,
            Milliwatts(1.559e-10),
            false,
            None,
        );
        let sparse = Simulator::new(with_modes(
            cfg.clone(),
            MobilityRefreshMode::Lazy,
            GainCacheMode::Sparse,
        ))
        .run();
        let dense = Simulator::new(with_modes(
            cfg,
            MobilityRefreshMode::Eager,
            GainCacheMode::Dense,
        ))
        .run();
        assert_eq!(fingerprint(&sparse), fingerprint(&dense), "seed {seed}");
    }
}

/// A fault plan dense enough to exercise every injection mechanism
/// inside the 2 s equivalence runs: a scheduled crash with recovery, a
/// permanent crash, sub-second churn over most of the run, an
/// impairment burst, and an energy budget low enough to kill at least
/// the busiest transmitter.
fn fault_plan(n: usize) -> FaultConfig {
    FaultConfig {
        crashes: Some(vec![
            CrashWindow {
                node: (n as u32).saturating_sub(2),
                at_s: 0.6,
                recover_s: Some(1.4),
            },
            CrashWindow {
                node: (n as u32).saturating_sub(1),
                at_s: 1.0,
                recover_s: None,
            },
        ]),
        churn: Some(ChurnConfig {
            mean_uptime_s: 0.7,
            mean_downtime_s: 0.2,
            start_s: Some(0.2),
            stop_s: Some(1.6),
        }),
        expire_routes: Some(true),
        impairments: Some(vec![ImpairmentBurst {
            start_s: 0.9,
            stop_s: 1.3,
            extra_loss_db: 12.0,
            noise_mult: Some(2.0),
        }]),
        energy_budget_mj: Some(0.25),
    }
}

/// The fault schedule is derived from the master seed and the plan
/// alone, so injected runs must stay bit-identical across the whole
/// refresh × cache matrix and across grid vs brute-force channels —
/// the ISSUE 6 determinism proof obligation.
#[test]
fn fault_injection_is_deterministic_across_refresh_and_cache_modes() {
    for seed in [3u64, 23, 41] {
        let n = 16;
        let mut cfg = random_scenario(
            Variant::ALL[seed as usize % 4],
            seed,
            n,
            1500.0,
            Milliwatts(1.559e-10),
            true,
            None,
        );
        cfg.faults = Some(fault_plan(n));

        let reference = {
            let mut c = cfg.clone();
            c.channel_index = ChannelIndexMode::BruteForce;
            c.mobility_refresh = Some(MobilityRefreshMode::Eager);
            c.gain_cache = Some(GainCacheMode::Off);
            Simulator::new(c).run()
        };
        assert!(reference.events > 0, "degenerate faulted run");
        let res = reference
            .resilience
            .as_ref()
            .expect("fault plan => resilience section");
        assert!(res.crashes >= 2, "the plan must actually crash nodes");
        assert!(
            res.sent_before + res.sent_during + res.sent_after == reference.sent_packets,
            "phase accounting must cover every packet"
        );

        for refresh in [MobilityRefreshMode::Lazy, MobilityRefreshMode::Eager] {
            for cache in [
                GainCacheMode::Auto,
                GainCacheMode::Dense,
                GainCacheMode::Sparse,
                GainCacheMode::Off,
            ] {
                let run = Simulator::new(with_modes(cfg.clone(), refresh, cache)).run();
                assert_eq!(
                    fingerprint(&run),
                    fingerprint(&reference),
                    "faulted run diverged (seed {seed} refresh {refresh:?} cache {cache:?})"
                );
            }
        }
    }
}

/// Same-seed reruns of a faulted mobile scenario are bit-identical —
/// churn draws come from derived streams, not shared global state.
#[test]
fn faulted_reruns_are_bit_identical() {
    let build = || {
        let mut cfg = random_scenario(
            Variant::Pcmac,
            57,
            14,
            1400.0,
            Milliwatts(1.559e-10),
            true,
            Some(ShadowingConfig {
                sigma_db: 4.0,
                symmetric: false,
            }),
        );
        cfg.faults = Some(fault_plan(14));
        cfg
    };
    let a = Simulator::new(build()).run();
    let b = Simulator::new(build()).run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

/// The observability layer's zero-behavioral-cost contract: turning
/// metrics on changes *nothing* observable — not even the reported
/// event count — on a faulted mobile scenario.
#[test]
fn metrics_layer_is_behaviour_identical() {
    for seed in [7u64, 57] {
        let build = |metrics: bool| {
            let mut cfg = random_scenario(
                Variant::Pcmac,
                seed,
                14,
                1400.0,
                Milliwatts(1.559e-10),
                true,
                None,
            );
            cfg.faults = Some(fault_plan(14));
            if metrics {
                cfg.metrics = Some(MetricsConfig::default());
            }
            cfg
        };
        let off = Simulator::new(build(false)).run();
        let on = Simulator::new(build(true)).run();
        assert!(off.metrics.is_none() && on.metrics.is_some());
        assert_eq!(
            on.events, off.events,
            "probe events must be excluded from the reported count (seed {seed})"
        );
        assert_eq!(
            behaviour_fingerprint(&on),
            behaviour_fingerprint(&off),
            "metrics-on diverged from metrics-off (seed {seed})"
        );
    }
}

/// The metrics section's own determinism contract: bit-identical across
/// same-mode reruns (including the hot-path profile), and — hot-path
/// profile aside, which by design counts mode-specific work —
/// bit-identical across the whole refresh × cache matrix.
#[test]
fn metrics_are_deterministic_across_reruns_and_modes() {
    let base = || {
        let mut cfg = random_scenario(
            Variant::Pcmac,
            57,
            14,
            1400.0,
            Milliwatts(1.559e-10),
            true,
            None,
        );
        cfg.faults = Some(fault_plan(14));
        cfg.metrics = Some(MetricsConfig {
            probe_interval_s: 0.25,
        });
        cfg
    };

    let a = Simulator::new(base()).run();
    let b = Simulator::new(base()).run();
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "same-mode reruns must match bit for bit, hot-path profile included"
    );
    let m = a.metrics.as_ref().expect("metrics layer on");
    assert!(!m.samples.is_empty(), "0.25 s probes inside a 2 s run");
    assert!(m.drops.conserved(), "taxonomy leak");

    let reference = {
        let mut c = base();
        c.channel_index = ChannelIndexMode::BruteForce;
        c.mobility_refresh = Some(MobilityRefreshMode::Eager);
        c.gain_cache = Some(GainCacheMode::Off);
        Simulator::new(c).run()
    };
    for refresh in [MobilityRefreshMode::Lazy, MobilityRefreshMode::Eager] {
        for cache in [
            GainCacheMode::Auto,
            GainCacheMode::Dense,
            GainCacheMode::Sparse,
            GainCacheMode::Off,
        ] {
            let run = Simulator::new(with_modes(base(), refresh, cache)).run();
            assert_eq!(
                mode_invariant_fingerprint(&run),
                mode_invariant_fingerprint(&reference),
                "metrics diverged across modes (refresh {refresh:?} cache {cache:?})"
            );
        }
    }
}

/// Pin the execution strategy. Both sides of a sharded-vs-single
/// comparison must carry the *same* delay floor — the floor is part of
/// the channel model (it quantizes short-range propagation delays), so
/// only runs sharing it are comparable. 10 µs stays well below the
/// 20 µs slot time; a floor at the slot or beyond would eat the CTS/ACK
/// timeouts' round-trip grace and silently zero out all traffic (which
/// `validate()` now rejects).
fn with_execution(mut cfg: ScenarioConfig, shards: Option<usize>) -> ScenarioConfig {
    cfg.delay_floor_us = Some(10.0);
    cfg.execution = shards.map(|shards| ExecutionMode::Sharded { shards });
    cfg
}

/// The PR 8 acceptance bar: the region-sharded engine reproduces the
/// single-threaded reference bit for bit at every shard count — static
/// and mobile, across variants — including the degenerate one-shard run
/// that still exercises the full windowing machinery.
#[test]
fn sharded_matches_single_across_shard_counts() {
    // Seeds chosen so both topologies actually deliver traffic — many
    // random 18-node scatters on a 1500 m field are partitioned, and a
    // zero-delivery scenario would make bit-identity a weak claim.
    for (seed, mobile) in [(10u64, false), (18, true)] {
        let cfg = random_scenario(
            Variant::ALL[seed as usize % 4],
            seed,
            18,
            1500.0,
            Milliwatts(1.559e-10),
            mobile,
            None,
        );
        let single = Simulator::new(with_execution(cfg.clone(), None)).run();
        assert!(single.events > 0, "degenerate run is a vacuous comparison");
        assert!(
            single.delivered_packets > 0,
            "traffic must actually flow under the delay floor — a zero-delivery \
             scenario would make bit-identity a vacuous claim (seed {seed})"
        );
        for shards in [1usize, 2, 4, 8] {
            let sharded = Simulator::new(with_execution(cfg.clone(), Some(shards))).run();
            assert_eq!(sharded.events, single.events, "event-count parity");
            assert_eq!(
                fingerprint(&sharded),
                fingerprint(&single),
                "sharded run diverged (seed {seed} mobile {mobile} shards {shards})"
            );
        }
    }
}

/// Sharding composed with the whole rest of the execution-strategy
/// space: refresh × cache under a dense fault plan (crashes, churn,
/// impairments, energy deaths). Every combination must reproduce the
/// single-threaded run with the same modes.
#[test]
fn sharded_matches_single_with_faults_across_refresh_and_cache() {
    for seed in [3u64, 23] {
        let n = 16;
        let mut cfg = random_scenario(
            Variant::ALL[seed as usize % 4],
            seed,
            n,
            1500.0,
            Milliwatts(1.559e-10),
            true,
            None,
        );
        cfg.faults = Some(fault_plan(n));
        for refresh in [MobilityRefreshMode::Lazy, MobilityRefreshMode::Eager] {
            for cache in [GainCacheMode::Sparse, GainCacheMode::Off] {
                let moded = with_modes(cfg.clone(), refresh, cache);
                let single = Simulator::new(with_execution(moded.clone(), None)).run();
                let res = single
                    .resilience
                    .as_ref()
                    .expect("fault plan => resilience");
                assert!(res.crashes >= 2, "the plan must actually crash nodes");
                for shards in [2usize, 8] {
                    let sharded = Simulator::new(with_execution(moded.clone(), Some(shards))).run();
                    assert_eq!(
                        fingerprint(&sharded),
                        fingerprint(&single),
                        "faulted sharded run diverged (seed {seed} refresh {refresh:?} \
                         cache {cache:?} shards {shards})"
                    );
                }
            }
        }
    }
}

/// The merged metrics section (drop taxonomy, probes, per-layer
/// counters) must equal the single-threaded one — hot-path profile
/// aside, which by design counts what each shard's machinery did.
#[test]
fn sharded_metrics_match_single_mode_invariant() {
    let mut cfg = random_scenario(
        Variant::Pcmac,
        57,
        14,
        1400.0,
        Milliwatts(1.559e-10),
        true,
        None,
    );
    cfg.faults = Some(fault_plan(14));
    cfg.metrics = Some(MetricsConfig {
        probe_interval_s: 0.25,
    });
    let single = Simulator::new(with_execution(cfg.clone(), None)).run();
    let m = single.metrics.as_ref().expect("metrics layer on");
    assert!(!m.samples.is_empty(), "0.25 s probes inside a 2 s run");
    for shards in [2usize, 4] {
        let sharded = Simulator::new(with_execution(cfg.clone(), Some(shards))).run();
        let sm = sharded.metrics.as_ref().expect("metrics layer on");
        assert!(
            sm.drops.conserved(),
            "merged taxonomy leaks (shards {shards})"
        );
        assert_eq!(
            mode_invariant_fingerprint(&sharded),
            mode_invariant_fingerprint(&single),
            "merged metrics diverged (shards {shards})"
        );
    }
}

/// Sharded determinism under thread oversubscription: with more worker
/// threads than cores the barrier schedule is maximally perturbed, yet
/// same-seed reruns must stay bit-identical (and equal to the
/// single-threaded reference) — no wall-clock, no scheduling order, no
/// contention effect may leak into the report.
#[test]
fn oversubscribed_sharded_reruns_are_bit_identical() {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let shards = 2 * cores;
    let mut cfg = random_scenario(
        Variant::Pcmac,
        57,
        14,
        1400.0,
        Milliwatts(1.559e-10),
        true,
        None,
    );
    cfg.faults = Some(fault_plan(14));
    let single = Simulator::new(with_execution(cfg.clone(), None)).run();
    let a = Simulator::new(with_execution(cfg.clone(), Some(shards))).run();
    let b = Simulator::new(with_execution(cfg, Some(shards))).run();
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "rerun differed ({shards} shards)"
    );
    assert_eq!(
        fingerprint(&a),
        fingerprint(&single),
        "sharded differed from single"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fuzzed refresh × cache matrix: any combination of mobility
    /// refresh strategy and gain cache must reproduce the brute-force
    /// eager live-evaluation reference bit for bit — mobile or static,
    /// any variant, any floor.
    #[test]
    fn refresh_and_cache_modes_never_change_results(
        seed in 0u64..10_000,
        n in 8usize..24,
        side in 600.0f64..3000.0,
        floor_exp in 0u32..4,
        variant_idx in 0usize..4,
        mobile in any::<bool>(),
        refresh_lazy in any::<bool>(),
        cache_idx in 0usize..4,
    ) {
        let floor = Milliwatts(1.559e-10 * 10f64.powi(floor_exp as i32));
        let cfg = random_scenario(
            Variant::ALL[variant_idx],
            seed,
            n,
            side,
            floor,
            mobile,
            None,
        );
        let refresh = if refresh_lazy { MobilityRefreshMode::Lazy } else { MobilityRefreshMode::Eager };
        let cache = [
            GainCacheMode::Auto,
            GainCacheMode::Dense,
            GainCacheMode::Sparse,
            GainCacheMode::Off,
        ][cache_idx];
        let indexed = Simulator::new(with_modes(cfg.clone(), refresh, cache)).run();
        let mut reference = cfg;
        reference.channel_index = ChannelIndexMode::BruteForce;
        reference.mobility_refresh = Some(MobilityRefreshMode::Eager);
        reference.gain_cache = Some(GainCacheMode::Off);
        let reference = Simulator::new(reference).run();
        prop_assert_eq!(
            fingerprint(&indexed),
            fingerprint(&reference),
            "diverged: seed {} n {} side {} mobile {} refresh {:?} cache {:?}",
            seed, n, side, mobile, refresh, cache
        );
    }

    /// Fuzzed equivalence: random seed, node count, field size, floor
    /// scaling, variant, and mobility flag.
    #[test]
    fn grid_matches_brute_force_fuzzed(
        seed in 0u64..10_000,
        n in 8usize..24,
        side in 600.0f64..3500.0,
        floor_exp in 0u32..4,
        variant_idx in 0usize..4,
        mobile in any::<bool>(),
    ) {
        // Floors from CSThresh/100 up to CSThresh·10: small floors make
        // everyone audible (stress superset-coverage), large floors make
        // reception local (stress cell culling).
        let floor = Milliwatts(1.559e-10 * 10f64.powi(floor_exp as i32));
        let cfg = random_scenario(
            Variant::ALL[variant_idx],
            seed,
            n,
            side,
            floor,
            mobile,
            None,
        );
        let mut grid_cfg = cfg.clone();
        grid_cfg.channel_index = ChannelIndexMode::Grid;
        let mut brute_cfg = cfg;
        brute_cfg.channel_index = ChannelIndexMode::BruteForce;
        let grid = Simulator::new(grid_cfg).run();
        let brute = Simulator::new(brute_cfg).run();
        prop_assert_eq!(
            fingerprint(&grid),
            fingerprint(&brute),
            "diverged: seed {} n {} side {} floor {:?} mobile {}",
            seed, n, side, floor, mobile
        );
    }
}

// ----------------------------------------------------------------------
// Checkpoint / restore (PR 10)
// ----------------------------------------------------------------------

use pcmac::{RunHooks, RunOutcome, SimSnapshot};
use std::sync::Mutex;

/// Run `cfg` to completion while checkpointing every `every`, returning
/// the completed report and every checkpoint in capture order.
fn run_with_checkpoints(cfg: ScenarioConfig, every: Duration) -> (RunReport, Vec<SimSnapshot>) {
    let sink = Mutex::new(Vec::new());
    let push = |s: SimSnapshot| sink.lock().unwrap().push(s);
    let outcome = Simulator::new(cfg).run_with_hooks(RunHooks {
        cancel: None,
        checkpoint_every: Some(every),
        checkpoint_sink: Some(&push),
    });
    let report = match outcome {
        RunOutcome::Completed(r) => r,
        RunOutcome::Cancelled(_) => panic!("no cancel token was supplied"),
    };
    (report, sink.into_inner().unwrap())
}

/// A faulted, metrics-on mobile scenario — the densest state a snapshot
/// has to carry (crashes, churn, impairments, energy budgets, probe
/// chains, waypoint RNGs all live at the cut).
fn snapshot_scenario(seed: u64, n: usize) -> ScenarioConfig {
    let mut cfg = random_scenario(
        Variant::ALL[seed as usize % 4],
        seed,
        n,
        1500.0,
        Milliwatts(1.559e-10),
        true,
        None,
    );
    cfg.faults = Some(fault_plan(n));
    cfg.metrics = Some(MetricsConfig {
        probe_interval_s: 0.25,
    });
    cfg
}

/// The PR 10 acceptance bar: snapshot at a fuzzed mid-run grid time
/// under every refresh × cache × shard-count combination (faulted,
/// metrics-on, mobile), restore in-process, run to the end — the result
/// must be bit-identical (mode-invariant observables) to the
/// uninterrupted reference. The capture run itself must also be
/// unperturbed by checkpointing, and every checkpoint must survive a
/// serialization round trip unchanged.
#[test]
fn checkpoint_restore_is_bit_identical_across_matrix() {
    for seed in [5u64, 29] {
        let cfg = snapshot_scenario(seed, 16);
        let reference = Simulator::new(with_execution(cfg.clone(), None)).run();
        assert!(
            reference.events > 0,
            "degenerate run is a vacuous comparison"
        );
        let ref_fp = mode_invariant_fingerprint(&reference);
        // Fuzz the checkpoint grid per seed so cuts land at arbitrary
        // mid-run instants, not a hand-picked friendly time.
        let every = Duration::from_millis(110 + (seed * 37) % 140);
        for (refresh, cache) in [
            (MobilityRefreshMode::Lazy, GainCacheMode::Sparse),
            (MobilityRefreshMode::Eager, GainCacheMode::Off),
        ] {
            for shards in [None, Some(1), Some(2), Some(4)] {
                let moded = with_execution(with_modes(cfg.clone(), refresh, cache), shards);
                let (hooked, snaps) = run_with_checkpoints(moded.clone(), every);
                assert_eq!(
                    mode_invariant_fingerprint(&hooked),
                    ref_fp,
                    "checkpointing perturbed the run (seed {seed} shards {shards:?})"
                );
                assert!(
                    snaps.len() >= 4,
                    "a 2 s run on a {every:?} grid must checkpoint repeatedly"
                );
                for s in &snaps {
                    assert_eq!(
                        s.time().as_nanos() % every.as_nanos(),
                        0,
                        "checkpoints land on the absolute grid"
                    );
                }
                let snap = &snaps[snaps.len() / 2];
                let bytes = snap.to_bytes();
                let back = SimSnapshot::from_bytes(&bytes).expect("round trip");
                assert_eq!(
                    back.state_fingerprint(),
                    snap.state_fingerprint(),
                    "serialization round trip changed behavioral state"
                );
                let resumed = Simulator::restore(moded.clone(), &back)
                    .expect("snapshot matches its own scenario")
                    .run();
                assert_eq!(
                    mode_invariant_fingerprint(&resumed),
                    ref_fp,
                    "restore-then-run diverged (seed {seed} refresh {refresh:?} \
                     cache {cache:?} shards {shards:?} cut {:?})",
                    snap.time()
                );
            }
        }
    }
}

/// Snapshots are execution-mode-portable: the behavioral state captured
/// at a grid instant is identical whether the run was single-threaded or
/// region-sharded, and a snapshot taken under one shard count restores
/// and completes under any other.
#[test]
fn snapshots_move_across_execution_modes() {
    let cfg = snapshot_scenario(29, 16);
    let every = Duration::from_millis(200);
    let reference = Simulator::new(with_execution(cfg.clone(), None)).run();
    let ref_fp = mode_invariant_fingerprint(&reference);

    let (_, single_snaps) = run_with_checkpoints(with_execution(cfg.clone(), None), every);
    let (_, sharded_snaps) = run_with_checkpoints(with_execution(cfg.clone(), Some(4)), every);
    assert_eq!(
        single_snaps.len(),
        sharded_snaps.len(),
        "both modes must cut at the same grid instants"
    );
    for (a, b) in single_snaps.iter().zip(&sharded_snaps) {
        assert_eq!(a.time(), b.time());
        assert_eq!(
            a.state_fingerprint(),
            b.state_fingerprint(),
            "single and 4-shard captures disagree at t = {:?}",
            a.time()
        );
    }

    // 1-shard capture → 4-shard resume, and 4-shard capture → single
    // resume: the cross-mode acceptance criterion.
    let (_, one_shard_snaps) = run_with_checkpoints(with_execution(cfg.clone(), Some(1)), every);
    let mid = &one_shard_snaps[one_shard_snaps.len() / 2];
    let resumed_4 = Simulator::restore(with_execution(cfg.clone(), Some(4)), mid)
        .expect("snapshots move across shard counts")
        .run();
    assert_eq!(
        mode_invariant_fingerprint(&resumed_4),
        ref_fp,
        "1-shard snapshot resumed under 4 shards diverged"
    );
    let mid = &sharded_snaps[sharded_snaps.len() / 2];
    let resumed_single = Simulator::restore(with_execution(cfg, None), mid)
        .expect("snapshots move across execution modes")
        .run();
    assert_eq!(
        mode_invariant_fingerprint(&resumed_single),
        ref_fp,
        "4-shard snapshot resumed single-threaded diverged"
    );
}

/// Cooperative cancellation stops cleanly at a cut with a resumable
/// snapshot — in both execution modes — and resuming from it completes
/// the run bit-identically.
#[test]
fn cancelled_runs_leave_resumable_snapshots() {
    let cfg = snapshot_scenario(5, 16);
    let reference = Simulator::new(with_execution(cfg.clone(), None)).run();
    let ref_fp = mode_invariant_fingerprint(&reference);
    for shards in [None, Some(4)] {
        let moded = with_execution(cfg.clone(), shards);
        // Cancel from inside the run, mid-flight: the second checkpoint
        // pulls the trigger, so the cancellation cut lands at an
        // arbitrary later instant.
        let token = pcmac::CancelToken::new();
        let seen = Mutex::new(0u32);
        let trip = |_s: SimSnapshot| {
            let mut n = seen.lock().unwrap();
            *n += 1;
            if *n == 2 {
                token.cancel();
            }
        };
        let outcome = Simulator::new(moded.clone()).run_with_hooks(RunHooks {
            cancel: Some(&token),
            checkpoint_every: Some(Duration::from_millis(300)),
            checkpoint_sink: Some(&trip),
        });
        let snap = match outcome {
            RunOutcome::Cancelled(Some(s)) => s,
            RunOutcome::Cancelled(None) => panic!("queue was not empty at the cut"),
            RunOutcome::Completed(_) => panic!("token was cancelled mid-run"),
        };
        assert!(
            snap.time() > SimTime::ZERO && snap.time() < SimTime::ZERO + cfg.duration,
            "cancellation cut should land mid-run, got {:?}",
            snap.time()
        );
        let resumed = Simulator::restore(moded, &snap)
            .expect("cancellation snapshot restores")
            .run();
        assert_eq!(
            mode_invariant_fingerprint(&resumed),
            ref_fp,
            "resume after cancellation diverged (shards {shards:?})"
        );
    }
}

/// Corrupt or foreign checkpoint artifacts surface structured errors —
/// truncation at any byte offset, bit rot, wrong magic, future versions,
/// a mismatched scenario — and never panic.
#[test]
fn corrupt_checkpoints_fail_structurally() {
    let cfg = snapshot_scenario(5, 12);
    let (_, snaps) = run_with_checkpoints(
        with_execution(cfg.clone(), None),
        Duration::from_millis(400),
    );
    let bytes = snaps[snaps.len() / 2].to_bytes();

    // Truncation at several offsets: inside the magic, the header, the
    // length field, and at assorted payload depths.
    for cut in [
        0usize,
        1,
        3,
        5,
        9,
        15,
        bytes.len() / 4,
        bytes.len() / 2,
        bytes.len() - 1,
    ] {
        assert!(
            SimSnapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} must be rejected",
            bytes.len()
        );
    }
    // Bit rot in the payload trips the checksum.
    let mut rotten = bytes.clone();
    let mid = rotten.len() / 2;
    rotten[mid] ^= 0x40;
    assert!(
        SimSnapshot::from_bytes(&rotten).is_err(),
        "bit rot must be rejected"
    );
    // Not a snapshot at all.
    let mut alien = bytes.clone();
    alien[0] ^= 0xFF;
    assert!(
        SimSnapshot::from_bytes(&alien).is_err(),
        "bad magic must be rejected"
    );
    // A future format version.
    let mut future = bytes.clone();
    future[4] = future[4].wrapping_add(1);
    assert!(
        SimSnapshot::from_bytes(&future).is_err(),
        "future versions must be rejected"
    );

    // A valid snapshot of a *different* scenario must refuse to restore.
    let snap = SimSnapshot::from_bytes(&bytes).expect("pristine bytes parse");
    let other = with_execution(snapshot_scenario(29, 12), None);
    assert!(
        !snap.matches(&other),
        "distinct scenarios must have distinct digests"
    );
    assert!(
        Simulator::restore(other, &snap).is_err(),
        "cfg-mismatched restore must fail, not corrupt state"
    );
}
